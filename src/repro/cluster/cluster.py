"""The cluster: a set of physical nodes and the snodes placed on them."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.node import ClusterNode
from repro.core.errors import ReproError
from repro.workloads.heterogeneity import CapacityProfile, NodeSpec


class Cluster:
    """A collection of physical nodes with snode placement bookkeeping.

    Examples
    --------
    >>> from repro.workloads import CapacityProfile
    >>> cluster = Cluster.from_profile(CapacityProfile.homogeneous(4))
    >>> placement = cluster.place_snodes(4)
    >>> sorted(placement) == [0, 1, 2, 3]
    True
    """

    def __init__(self, nodes: Optional[List[ClusterNode]] = None):
        self.nodes: Dict[str, ClusterNode] = {}
        for node in nodes or []:
            self.add_node(node)
        self._next_snode_id = 0

    # ------------------------------------------------------------------ nodes

    @classmethod
    def from_profile(cls, profile: CapacityProfile) -> "Cluster":
        """Build a cluster from a capacity profile."""
        return cls([ClusterNode(spec) for spec in profile.nodes])

    @classmethod
    def homogeneous(cls, n: int) -> "Cluster":
        """A cluster of ``n`` identical nodes (the paper's evaluation setting)."""
        return cls.from_profile(CapacityProfile.homogeneous(n))

    def add_node(self, node: ClusterNode) -> None:
        """Add a physical node to the cluster."""
        if node.name in self.nodes:
            raise ReproError(f"cluster node {node.name!r} already exists")
        self.nodes[node.name] = node

    def add_node_spec(self, spec: NodeSpec) -> ClusterNode:
        """Add a physical node described by a capacity spec."""
        node = ClusterNode(spec)
        self.add_node(node)
        return node

    def get_node(self, name: str) -> ClusterNode:
        """Resolve a node by name."""
        try:
            return self.nodes[name]
        except KeyError:
            raise ReproError(f"cluster node {name!r} does not exist") from None

    @property
    def n_nodes(self) -> int:
        """Number of physical nodes."""
        return len(self.nodes)

    @property
    def n_snodes(self) -> int:
        """Total number of snodes placed."""
        return sum(n.n_snodes for n in self.nodes.values())

    # ------------------------------------------------------------------ placement

    def place_snodes(self, n_snodes: int) -> Dict[int, str]:
        """Place ``n_snodes`` snodes round-robin over the physical nodes.

        Returns ``snode_id -> node name``.  The paper's evaluation uses one
        snode per physical node; placing several snodes per node is how a
        node would participate in several DHTs.
        """
        if not self.nodes:
            raise ReproError("cannot place snodes on an empty cluster")
        if n_snodes < 1:
            raise ValueError("n_snodes must be >= 1")
        names = list(self.nodes)
        placement: Dict[int, str] = {}
        for i in range(n_snodes):
            snode_id = self._next_snode_id
            self._next_snode_id += 1
            name = names[i % len(names)]
            self.nodes[name].host_snode(snode_id)
            placement[snode_id] = name
        return placement

    def snode_host(self, snode_id: int) -> str:
        """Name of the physical node hosting the given snode."""
        for name, node in self.nodes.items():
            if snode_id in node.snodes:
                return name
        raise ReproError(f"snode {snode_id} is not placed on any cluster node")

    # ------------------------------------------------------------------ capacity

    def capacity_weights(self) -> Dict[str, float]:
        """Per-node capacity relative to the average node (for enrollments)."""
        profile = CapacityProfile([node.spec for node in self.nodes.values()])
        return profile.relative_weights()

    def enrollments(self, base_vnodes: int = 4) -> Dict[str, int]:
        """Vnodes each physical node should contribute, given its capacity."""
        profile = CapacityProfile([node.spec for node in self.nodes.values()])
        return profile.enrollments(base_vnodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cluster(nodes={self.n_nodes}, snodes={self.n_snodes})"
