"""Control-protocol messages exchanged during topology lifecycle events.

The message classes exist to make the protocol simulation explicit and
self-documenting: each lifecycle event — vnode creation or removal, snode
crash recovery, replica sync, load rebalancing — is a sequence of typed
messages whose sizes feed the network model.  Sizes are estimates of a
compact wire encoding and only matter relative to each other.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Message:
    """Base class of all protocol messages."""

    src: int
    dst: int

    #: Estimated wire size of the fixed part of any message (headers, ids).
    BASE_SIZE_BYTES = 64

    def size_bytes(self) -> float:
        """Wire size of the message."""
        return float(self.BASE_SIZE_BYTES)


@dataclass(frozen=True)
class CreateVnodeRequest(Message):
    """Request asking the destination snode to take part in a vnode creation."""

    vnode: int = 0

    def size_bytes(self) -> float:
        return float(self.BASE_SIZE_BYTES + 16)


@dataclass(frozen=True)
class RecordSync(Message):
    """GPDR/LPDR synchronization message carrying one record replica.

    The record has one entry (canonical name + partition count) per vnode.
    """

    n_entries: int = 0

    #: Estimated size of one record entry (canonical name + count).
    ENTRY_SIZE_BYTES = 24

    def size_bytes(self) -> float:
        return float(self.BASE_SIZE_BYTES + self.ENTRY_SIZE_BYTES * self.n_entries)


@dataclass(frozen=True)
class PartitionTransfer(Message):
    """Hand-over of one partition and the items stored under it."""

    payload_bytes: float = 0.0

    def size_bytes(self) -> float:
        return float(self.BASE_SIZE_BYTES + self.payload_bytes)


@dataclass(frozen=True)
class RemoveVnodeRequest(Message):
    """Request asking the destination snode to take part in a vnode removal.

    Covers both graceful leaves and enrollment shrinks: the victim vnode's
    partitions are drained to the surviving vnodes of its scope before the
    record entry is dropped.
    """

    vnode: int = 0

    def size_bytes(self) -> float:
        return float(self.BASE_SIZE_BYTES + 16)


@dataclass(frozen=True)
class CrashNotice(Message):
    """Failure notification: a snode crashed without a graceful drain.

    Broadcast by the failure detector to every snode involved in the
    recovery so they agree on the new ownership before replica rebuild
    transfers start.
    """

    snode: int = 0

    def size_bytes(self) -> float:
        return float(self.BASE_SIZE_BYTES + 8)


@dataclass(frozen=True)
class RestartNotice(Message):
    """Rejoin notification: a killed snode came back with its disk intact.

    Broadcast when a restarted snode re-announces itself so the cluster
    agrees it kept its vnodes.  The data plane is local: the snode replays
    its own WAL/segments from disk (priced per replayed record, no bulk
    network transfer) unless recovery judges a replica rebuild cheaper.
    """

    snode: int = 0

    def size_bytes(self) -> float:
        return float(self.BASE_SIZE_BYTES + 8)


@dataclass(frozen=True)
class ReplicaRebuildTransfer(Message):
    """Bulk copy of surviving replica rows rebuilding a lost primary.

    The payload is the surviving-replica rows that recovery promotes back
    to primaries after a crash (``rows_restored`` of the recovery pass).
    """

    payload_bytes: float = 0.0

    def size_bytes(self) -> float:
        return float(self.BASE_SIZE_BYTES + self.payload_bytes)


@dataclass(frozen=True)
class ReplicaSyncTransfer(Message):
    """Replica-sync fan-out: primary rows refilled into replica stores.

    Sent once per replica rank after a topology change so every partition
    regains its full complement of copies (``rows_refilled`` of the sync
    pass).
    """

    payload_bytes: float = 0.0

    def size_bytes(self) -> float:
        return float(self.BASE_SIZE_BYTES + self.payload_bytes)


@dataclass(frozen=True)
class RebalanceTransfer(Message):
    """Hand-over of one partition decided by the load-aware rebalancing plan."""

    payload_bytes: float = 0.0

    def size_bytes(self) -> float:
        return float(self.BASE_SIZE_BYTES + self.payload_bytes)


@dataclass(frozen=True)
class Ack(Message):
    """Acknowledgement closing a request/response exchange."""
