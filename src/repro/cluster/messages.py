"""Protocol messages: the cost model's vocabulary *and* the wire format.

The message classes started as cost-model artifacts: each lifecycle event —
vnode creation or removal, snode crash recovery, replica sync, load
rebalancing — is a sequence of typed messages whose ``size_bytes`` feed the
network model.  Sizes of those control messages are estimates of a compact
wire encoding and only matter relative to each other.

Since the networked runtime (:mod:`repro.runtime`) the same classes are
also the *actual* protocol: every message knows how to :meth:`~Message.encode`
itself to bytes and the module-level :func:`decode` turns bytes back into
the typed message.  The body encoding is a 2-byte type code (assigned from
the registration order of the subclasses, identical on every process
running the same code) followed by the pickled tuple of field values;
length-prefix framing on a stream is the transport's job
(:mod:`repro.runtime.codec`).

The data-plane messages (:class:`PutRequest`, :class:`GetRequest`,
:class:`BulkLoadChunk`, :class:`LookupRequest`, the range-transfer family)
report their **actual** encoded length as ``size_bytes`` — real traffic is
measured, not estimated.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass, fields
from typing import Any, Dict, Optional, Tuple, Type

#: Wire prefix of an encoded message body: the subclass' type code.
_TYPE_CODE = struct.Struct("!H")

#: ``type code -> message class``, filled by ``Message.__init_subclass__``
#: in definition order (deterministic across processes running this module).
MESSAGE_TYPES: Dict[int, Type["Message"]] = {}


class WireError(ValueError):
    """An encoded message could not be decoded."""


@dataclass(frozen=True)
class Message:
    """Base class of all protocol messages."""

    src: int
    dst: int

    #: Estimated wire size of the fixed part of any message (headers, ids).
    BASE_SIZE_BYTES = 64

    #: Wire type code of the concrete class (set by ``__init_subclass__``).
    TYPE_CODE = 0

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        code = len(MESSAGE_TYPES) + 1
        cls.TYPE_CODE = code
        MESSAGE_TYPES[code] = cls

    def size_bytes(self) -> float:
        """Wire size of the message."""
        return float(self.BASE_SIZE_BYTES)

    # -- wire encoding --------------------------------------------------------

    def encode(self) -> bytes:
        """Encode to bytes: 2-byte type code + pickled field-value tuple."""
        values = tuple(getattr(self, f.name) for f in fields(self))
        return _TYPE_CODE.pack(type(self).TYPE_CODE) + pickle.dumps(
            values, protocol=pickle.HIGHEST_PROTOCOL
        )


def decode(data: bytes) -> Message:
    """Decode one message encoded by :meth:`Message.encode`."""
    if len(data) < _TYPE_CODE.size:
        raise WireError(f"message body too short ({len(data)} bytes)")
    (code,) = _TYPE_CODE.unpack_from(data)
    try:
        cls = MESSAGE_TYPES[code]
    except KeyError:
        raise WireError(f"unknown message type code {code}") from None
    try:
        values = pickle.loads(data[_TYPE_CODE.size :])
        return cls(*values)
    except WireError:
        raise
    except Exception as exc:
        raise WireError(f"cannot decode {cls.__name__} body: {exc!r}") from exc


@dataclass(frozen=True)
class CreateVnodeRequest(Message):
    """Request asking the destination snode to take part in a vnode creation."""

    vnode: int = 0

    def size_bytes(self) -> float:
        return float(self.BASE_SIZE_BYTES + 16)


@dataclass(frozen=True)
class RecordSync(Message):
    """GPDR/LPDR synchronization message carrying one record replica.

    The record has one entry (canonical name + partition count) per vnode.
    """

    n_entries: int = 0

    #: Estimated size of one record entry (canonical name + count).
    ENTRY_SIZE_BYTES = 24

    def size_bytes(self) -> float:
        return float(self.BASE_SIZE_BYTES + self.ENTRY_SIZE_BYTES * self.n_entries)


@dataclass(frozen=True)
class PartitionTransfer(Message):
    """Hand-over of one partition and the items stored under it."""

    payload_bytes: float = 0.0

    def size_bytes(self) -> float:
        return float(self.BASE_SIZE_BYTES + self.payload_bytes)


@dataclass(frozen=True)
class RemoveVnodeRequest(Message):
    """Request asking the destination snode to take part in a vnode removal.

    Covers both graceful leaves and enrollment shrinks: the victim vnode's
    partitions are drained to the surviving vnodes of its scope before the
    record entry is dropped.
    """

    vnode: int = 0

    def size_bytes(self) -> float:
        return float(self.BASE_SIZE_BYTES + 16)


@dataclass(frozen=True)
class CrashNotice(Message):
    """Failure notification: a snode crashed without a graceful drain.

    Broadcast by the failure detector to every snode involved in the
    recovery so they agree on the new ownership before replica rebuild
    transfers start.
    """

    snode: int = 0

    def size_bytes(self) -> float:
        return float(self.BASE_SIZE_BYTES + 8)


@dataclass(frozen=True)
class RestartNotice(Message):
    """Rejoin notification: a killed snode came back with its disk intact.

    Broadcast when a restarted snode re-announces itself so the cluster
    agrees it kept its vnodes.  The data plane is local: the snode replays
    its own WAL/segments from disk (priced per replayed record, no bulk
    network transfer) unless recovery judges a replica rebuild cheaper.
    """

    snode: int = 0

    def size_bytes(self) -> float:
        return float(self.BASE_SIZE_BYTES + 8)


@dataclass(frozen=True)
class ReplicaRebuildTransfer(Message):
    """Bulk copy of surviving replica rows rebuilding a lost primary.

    The payload is the surviving-replica rows that recovery promotes back
    to primaries after a crash (``rows_restored`` of the recovery pass).
    """

    payload_bytes: float = 0.0

    def size_bytes(self) -> float:
        return float(self.BASE_SIZE_BYTES + self.payload_bytes)


@dataclass(frozen=True)
class ReplicaSyncTransfer(Message):
    """Replica-sync fan-out: primary rows refilled into replica stores.

    Sent once per replica rank after a topology change so every partition
    regains its full complement of copies (``rows_refilled`` of the sync
    pass).
    """

    payload_bytes: float = 0.0

    def size_bytes(self) -> float:
        return float(self.BASE_SIZE_BYTES + self.payload_bytes)


@dataclass(frozen=True)
class RebalanceTransfer(Message):
    """Hand-over of one partition decided by the load-aware rebalancing plan."""

    payload_bytes: float = 0.0

    def size_bytes(self) -> float:
        return float(self.BASE_SIZE_BYTES + self.payload_bytes)


@dataclass(frozen=True)
class Ack(Message):
    """Acknowledgement closing a request/response exchange.

    A bare ``Ack`` (no payload, no error) is the minimal reply and its size
    is exactly :attr:`~Message.BASE_SIZE_BYTES` — the cost model's
    :meth:`~repro.cluster.network.NetworkModel.rpc_time` depends on that.
    The networked runtime reuses the same class as its generic response
    envelope: ``payload`` carries the result value of the request and
    ``error`` carries the exception kind (e.g. ``"KeyError"``) when the
    handler failed, so the client can re-raise a typed error.
    """

    payload: Any = None
    error: Optional[str] = None

    def size_bytes(self) -> float:
        if self.payload is None and self.error is None:
            return float(self.BASE_SIZE_BYTES)
        return float(max(self.BASE_SIZE_BYTES, len(self.encode())))


def _measured_size(message: Message) -> float:
    """Actual encoded length of a data-plane message, floored at the header."""
    return float(max(Message.BASE_SIZE_BYTES, len(message.encode())))


@dataclass(frozen=True)
class PingRequest(Message):
    """Liveness/readiness probe; the reply is a bare :class:`Ack`."""


@dataclass(frozen=True)
class PutRequest(Message):
    """Data-plane write of one item into a vnode's primary or replica tier.

    ``ref`` is the canonical vnode name (``"s0.1"``); ``tier`` selects the
    store (``"primary"`` or ``"replica"``).  ``index`` is the precomputed
    hash index so the server does not need to re-hash the key.
    """

    ref: str = ""
    tier: str = "primary"
    key: Any = None
    index: int = 0
    value: Any = None

    def size_bytes(self) -> float:
        return _measured_size(self)


@dataclass(frozen=True)
class GetRequest(Message):
    """Data-plane read of one key from a vnode tier; replies ``Ack(payload=value)``."""

    ref: str = ""
    tier: str = "primary"
    key: Any = None

    def size_bytes(self) -> float:
        return _measured_size(self)


@dataclass(frozen=True)
class DeleteRequest(Message):
    """Data-plane delete of one key from a vnode tier."""

    ref: str = ""
    tier: str = "primary"
    key: Any = None

    def size_bytes(self) -> float:
        return _measured_size(self)


@dataclass(frozen=True)
class LookupRequest(Message):
    """Route a key through the server's local placement view.

    Replies ``Ack(payload=(level, partition_index, ref_name, snode_id))`` —
    enough for the client to address the owning vnode without holding the
    full routing table itself.
    """

    key: Any = None

    def size_bytes(self) -> float:
        return _measured_size(self)


@dataclass(frozen=True)
class BulkLoadChunk(Message):
    """Columnar batch write into one vnode tier.

    ``keys``/``indexes``/``values`` are parallel sequences (typically numpy
    arrays) — the row-transfer unit of the bulk-load path.
    """

    ref: str = ""
    tier: str = "primary"
    keys: Any = None
    indexes: Any = None
    values: Any = None

    def size_bytes(self) -> float:
        return _measured_size(self)


@dataclass(frozen=True)
class RangeExtract(Message):
    """Extract the rows of a vnode tier falling inside absolute hash ranges.

    ``ranges`` is a tuple of ``(start, last_inclusive)`` pairs.  With
    ``pop=True`` the rows are removed from the source (a migration);
    otherwise they are copied (a replica rebuild read).  Replies
    ``Ack(payload=parts)`` where ``parts`` is the ``(pairs, segments)``
    columnar transfer unit of :mod:`repro.core.storage`.
    """

    ref: str = ""
    tier: str = "primary"
    ranges: Tuple[Tuple[int, int], ...] = ()
    pop: bool = True

    def size_bytes(self) -> float:
        return _measured_size(self)


@dataclass(frozen=True)
class RangeAdopt(Message):
    """Adopt extracted rows (``(pairs, segments)`` parts) into a vnode tier."""

    ref: str = ""
    tier: str = "primary"
    parts: Any = None

    def size_bytes(self) -> float:
        return _measured_size(self)


@dataclass(frozen=True)
class RangeCount(Message):
    """Count the rows of a vnode tier inside absolute hash ranges.

    Replies ``Ack(payload=[counts...])``, one count per range — the
    conservation/verification primitive of the cluster harness.
    """

    ref: str = ""
    tier: str = "primary"
    ranges: Tuple[Tuple[int, int], ...] = ()

    def size_bytes(self) -> float:
        return _measured_size(self)


@dataclass(frozen=True)
class RangeDrop(Message):
    """Drop every row of a vnode tier *inside* the given absolute ranges.

    Replies ``Ack(payload=n_dropped)``.  The idempotent prelude of a
    replica refill: the target range is cleared before the fresh copy is
    adopted, so partial previous copies can never double-count.
    """

    ref: str = ""
    tier: str = "primary"
    ranges: Tuple[Tuple[int, int], ...] = ()

    def size_bytes(self) -> float:
        return _measured_size(self)


@dataclass(frozen=True)
class RangeRetain(Message):
    """Drop every row of a vnode tier *outside* the given absolute ranges.

    Replies ``Ack(payload=n_dropped)``.  Used after ownership shrinks so a
    node does not keep serving rows it no longer owns.
    """

    ref: str = ""
    tier: str = "primary"
    ranges: Tuple[Tuple[int, int], ...] = ()

    def size_bytes(self) -> float:
        return _measured_size(self)


@dataclass(frozen=True)
class VnodeCreate(Message):
    """Runtime order to host a vnode: register primary + replica stores.

    ``fresh=False`` tells a rebooted server process to re-adopt the vnode's
    existing on-disk WAL/segments (marking them for replay) instead of
    starting from an empty directory.
    """

    ref: str = ""
    fresh: bool = True

    def size_bytes(self) -> float:
        return _measured_size(self)


@dataclass(frozen=True)
class VnodeDrop(Message):
    """Runtime order to stop hosting a vnode (stores must already be empty)."""

    ref: str = ""

    def size_bytes(self) -> float:
        return _measured_size(self)


@dataclass(frozen=True)
class WalReplay(Message):
    """Order a restarted node to replay one vnode's WAL/segments from disk.

    Replies ``Ack(payload=rows_recovered)``.
    """

    ref: str = ""

    def size_bytes(self) -> float:
        return _measured_size(self)


@dataclass(frozen=True)
class TopologySnapshot(Message):
    """Coordinator-pushed routing state: the full ownership table.

    ``entries`` is a tuple of ``(level, partition_index, ref_name)``
    triples.  Each node rebuilds its local router and replica placement
    from the snapshot deterministically, so placement never has to be
    shipped explicitly.
    """

    version: int = 0
    entries: Tuple[Tuple[int, int, str], ...] = ()

    def size_bytes(self) -> float:
        return _measured_size(self)


@dataclass(frozen=True)
class NodeStatsRequest(Message):
    """Ask a node for its per-vnode row counts and durability counters.

    Replies ``Ack(payload=stats_dict)``.  With ``partitions=True`` the
    reply additionally carries, per hosted vnode, the primary row count of
    every owned partition (``stats_dict["partitions"][ref_name]`` maps
    ``(level, index)`` partition keys to row counts) — the measurement
    feed of the runtime's load-aware rebalancer.
    """

    partitions: bool = False

    def size_bytes(self) -> float:
        return _measured_size(self)


@dataclass(frozen=True)
class PeerTransferRequest(Message):
    """Coordinator order: push owned rows directly to a peer node.

    The source node extracts ``ranges`` (inclusive ``(start, last)``
    pairs) from ``ref``'s ``tier``, ships them to ``target_address`` as a
    ``RangeAdopt`` into ``target_ref`` over its own outbound connection,
    and only after the peer acknowledges the adoption drops its local
    copy (when ``pop=True``).  Replies
    ``Ack(payload={"rows": n, "peer_bytes": b})``.  The coordinator link
    carries only this order and its ack — row payloads flow peer-to-peer.
    """

    ref: str = ""
    target_ref: str = ""
    target_address: Tuple[str, int] = ("", 0)
    tier: str = "primary"
    ranges: Tuple[Tuple[int, int], ...] = ()
    pop: bool = True

    def size_bytes(self) -> float:
        return _measured_size(self)


@dataclass(frozen=True)
class PeerTransferDone(Message):
    """Completion ack of one peer-to-peer range transfer.

    A metadata-only control message: it reports how many rows and payload
    bytes moved on the *peer* link, without carrying them.  Priced by the
    cost model as the coordinator-side cost of a p2p handover
    (:attr:`~repro.cluster.protocol.ProtocolCosts.peer_transfer_metadata_bytes`).
    """

    rows: int = 0
    payload_bytes: float = 0.0

    def size_bytes(self) -> float:
        return float(self.BASE_SIZE_BYTES + 16)
