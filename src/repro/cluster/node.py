"""Physical cluster nodes hosting snodes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.workloads.heterogeneity import NodeSpec


@dataclass
class ClusterNode:
    """A physical machine of the cluster.

    A cluster node may host several snodes (one per DHT it participates in,
    section 2.1.1); here we track the snode ids and the node's capacity
    specification, which drives its enrollment level.
    """

    spec: NodeSpec
    snodes: List[int] = field(default_factory=list)

    @property
    def name(self) -> str:
        """The node's name (from its capacity spec)."""
        return self.spec.name

    @property
    def capacity_score(self) -> float:
        """Scalar capacity of this node."""
        return self.spec.capacity_score()

    def host_snode(self, snode_id: int) -> None:
        """Record that this node hosts the given snode."""
        if snode_id in self.snodes:
            raise ValueError(f"snode {snode_id} already hosted by {self.name}")
        self.snodes.append(snode_id)

    def release_snode(self, snode_id: int) -> None:
        """Record that the given snode left this node."""
        try:
            self.snodes.remove(snode_id)
        except ValueError:
            raise ValueError(f"snode {snode_id} is not hosted by {self.name}") from None

    @property
    def n_snodes(self) -> int:
        """Number of snodes currently hosted."""
        return len(self.snodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClusterNode({self.name}, snodes={self.snodes})"
