"""A small discrete-event simulation engine with FIFO resources.

The engine is deliberately minimal: an event queue ordered by time (ties
broken by insertion order, so the simulation is deterministic) and a FIFO
resource abstraction used to model the serialization points of the DHT
control protocol (the global "every snode participates" barrier and the
per-group locks of the local approach).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Callable, Deque, List, Optional

from repro.core.errors import ProtocolError

EventCallback = Callable[[], None]


class EventScheduler:
    """Time-ordered event queue with deterministic tie-breaking."""

    def __init__(self):
        self._queue: List = []
        self._counter = itertools.count()
        self.now = 0.0
        self._processed = 0

    def schedule_at(self, time: float, callback: EventCallback) -> None:
        """Schedule ``callback`` to run at absolute time ``time``."""
        if time < self.now:
            raise ProtocolError(
                f"cannot schedule an event in the past (now={self.now}, requested={time})"
            )
        heapq.heappush(self._queue, (float(time), next(self._counter), callback))

    def schedule_after(self, delay: float, callback: EventCallback) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ProtocolError(f"delay must be non-negative, got {delay}")
        self.schedule_at(self.now + delay, callback)

    @property
    def pending(self) -> int:
        """Number of events not yet executed."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Execute events in time order.

        Stops when the queue empties, when the next event is later than
        ``until``, or after ``max_events`` (a loud guard against runaway
        event loops).  Returns the simulation time reached.
        """
        executed = 0
        while self._queue:
            time, _, callback = self._queue[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            self.now = time
            callback()
            self._processed += 1
            executed += 1
            if executed >= max_events:
                raise ProtocolError(f"event limit reached ({max_events}); aborting simulation")
        if until is not None:
            self.now = max(self.now, until)
        return self.now


class FifoResource:
    """A resource granted to one holder at a time, in request order.

    Models the serialization points of the protocol: the DHT-wide barrier of
    the global approach and the per-group locks of the local approach.
    """

    def __init__(self, scheduler: EventScheduler, name: str = "resource"):
        self.scheduler = scheduler
        self.name = name
        self._busy = False
        # A deque: release() hands over with popleft(), which is O(1).  A
        # plain list's pop(0) is O(n) per release — quadratic drain under the
        # global lock once thousands of requests queue behind it.
        self._waiters: Deque[Callable[[], None]] = deque()
        self.total_waits = 0
        self.total_grants = 0

    @property
    def busy(self) -> bool:
        """True while some holder owns the resource."""
        return self._busy

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for the resource."""
        return len(self._waiters)

    def acquire(self, on_grant: Callable[[], None]) -> None:
        """Request the resource; ``on_grant`` runs (via the scheduler) when granted."""
        if not self._busy:
            self._busy = True
            self.total_grants += 1
            self.scheduler.schedule_after(0.0, on_grant)
        else:
            self.total_waits += 1
            self._waiters.append(on_grant)

    def release(self) -> None:
        """Release the resource, granting it to the next waiter (if any)."""
        if not self._busy:
            raise ProtocolError(f"resource {self.name!r} released while not held")
        if self._waiters:
            # Counted here, not at request time: a request still queued when
            # the simulation ends was never granted the resource.
            self.total_grants += 1
            next_grant = self._waiters.popleft()
            self.scheduler.schedule_after(0.0, next_grant)
        else:
            self._busy = False
