"""Deterministic random-number handling.

All stochastic components of the reproduction (victim-group selection in
the local approach, random cut points in Consistent Hashing, workload
generators, the discrete-event cluster simulator) accept either a seed or
a :class:`numpy.random.Generator`.  Centralising the conversion here keeps
experiment runs reproducible: a single integer seed fully determines every
random decision of a run.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (fresh OS-seeded generator), an integer seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator
        (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, (int, np.integer)):
        if rng < 0:
            raise ValueError(f"seed must be non-negative, got {rng}")
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot build a Generator from {type(rng).__name__}")


def spawn_rngs(rng: RngLike, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent child generators.

    Used by the experiment runner to give every repetition of a simulation
    its own stream while remaining a pure function of the master seed.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(rng, (int, np.integer)):
        seq = np.random.SeedSequence(int(rng))
    elif isinstance(rng, np.random.SeedSequence):
        seq = rng
    elif rng is None:
        seq = np.random.SeedSequence()
    elif isinstance(rng, np.random.Generator):
        # Derive a SeedSequence from the generator's bit stream so that
        # spawning is still deterministic given the generator state.
        seq = np.random.SeedSequence(int(rng.integers(0, 2**63 - 1)))
    else:
        raise TypeError(f"cannot spawn from {type(rng).__name__}")
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def derive_seed(master_seed: int, *components: Union[int, str]) -> int:
    """Derive a sub-seed from a master seed and a tuple of components.

    The derivation is stable across processes and Python versions (it does
    not use :func:`hash`), so experiment results keyed by
    ``(figure, parameter, run-index)`` are reproducible.
    """
    if master_seed < 0:
        raise ValueError("master_seed must be non-negative")
    entropy: list[int] = [int(master_seed)]
    for comp in components:
        if isinstance(comp, str):
            entropy.append(int.from_bytes(comp.encode("utf-8"), "little") % (2**63))
        elif isinstance(comp, (int, np.integer)):
            entropy.append(int(comp) % (2**63))
        else:
            raise TypeError(f"seed components must be int or str, got {type(comp).__name__}")
    seq = np.random.SeedSequence(entropy)
    return int(seq.generate_state(1, dtype=np.uint64)[0] % (2**63))


def random_indices(rng: RngLike, n: int, upper: int) -> np.ndarray:
    """Draw ``n`` uniform integer indices in ``[0, upper)`` as an array."""
    gen = ensure_rng(rng)
    if upper <= 0:
        raise ValueError("upper bound must be positive")
    return gen.integers(0, upper, size=n, dtype=np.int64)


def iter_chunks(seq: Sequence, size: int) -> Iterable[Sequence]:
    """Yield successive chunks of ``seq`` of at most ``size`` elements."""
    if size <= 0:
        raise ValueError("chunk size must be positive")
    for start in range(0, len(seq), size):
        yield seq[start : start + size]
