"""Garbage-collection scoping for bulk operations.

CPython's generational collector triggers on allocation counts; a bulk
ingest that creates millions of container objects (dict entries, tuples)
makes it run full collections over an ever-growing heap, turning an O(n)
operation into something much worse in practice.  Batch APIs therefore
pause automatic collection for the duration of one bulk operation and
restore the previous state afterwards — the allocations still happen, the
collector just inspects them once at the end instead of dozens of times
mid-flight.

Per-key APIs cannot amortize this (pausing and resuming the collector per
item would cost more than it saves), which is one of the reasons the bulk
paths beat the scalar ones by a wide margin on large workloads.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from typing import Iterator


@contextmanager
def deferred_gc() -> Iterator[None]:
    """Pause automatic garbage collection for one bulk operation.

    Re-enables collection on exit only if it was enabled on entry, so nested
    uses and externally-disabled collectors behave correctly.  Exceptions
    propagate; the collector state is restored either way.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
