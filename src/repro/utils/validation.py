"""Validation helpers shared by configuration objects and entities."""

from __future__ import annotations

from typing import Any, Type


def require(condition: bool, message: str, exc: Type[Exception] = ValueError) -> None:
    """Raise ``exc(message)`` unless ``condition`` holds."""
    if not condition:
        raise exc(message)


def is_power_of_two(n: int) -> bool:
    """Return True if ``n`` is a positive power of two (1, 2, 4, 8, ...)."""
    return isinstance(n, int) and n > 0 and (n & (n - 1)) == 0


def check_power_of_two(n: Any, name: str) -> int:
    """Validate that ``n`` is a positive power of two and return it as int."""
    if isinstance(n, bool) or not isinstance(n, int):
        raise TypeError(f"{name} must be an int, got {type(n).__name__}")
    if not is_power_of_two(n):
        raise ValueError(f"{name} must be a positive power of two, got {n}")
    return n


def check_positive(n: Any, name: str) -> int:
    """Validate that ``n`` is a positive integer and return it."""
    if isinstance(n, bool) or not isinstance(n, int):
        raise TypeError(f"{name} must be an int, got {type(n).__name__}")
    if n <= 0:
        raise ValueError(f"{name} must be positive, got {n}")
    return n


def check_non_negative(n: Any, name: str) -> int:
    """Validate that ``n`` is a non-negative integer and return it."""
    if isinstance(n, bool) or not isinstance(n, int):
        raise TypeError(f"{name} must be an int, got {type(n).__name__}")
    if n < 0:
        raise ValueError(f"{name} must be non-negative, got {n}")
    return n


def check_in_range(value: float, low: float, high: float, name: str) -> float:
    """Validate ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed unit interval."""
    return check_in_range(float(value), 0.0, 1.0, name)
