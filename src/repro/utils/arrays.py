"""Small numpy helpers shared by the batch paths."""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np


def as_object_column(seq: Union[Sequence, np.ndarray]) -> np.ndarray:
    """A 1-D object array holding exactly the elements of ``seq``.

    ``np.asarray(seq, dtype=object)`` is NOT safe here: when every element
    is a sequence of equal length (tuples, lists, arrays) numpy builds a
    2-D array, and the elements later come back as nested lists instead of
    the original objects.  Pre-allocating a 1-D object array and assigning
    into it preserves each element untouched.
    """
    if isinstance(seq, np.ndarray):
        if seq.ndim != 1:
            raise ValueError(f"expected a 1-D column, got shape {seq.shape}")
        return seq
    arr = np.empty(len(seq), dtype=object)
    arr[:] = seq
    return arr
