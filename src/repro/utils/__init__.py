"""Small shared utilities (RNG handling, validation helpers).

These helpers are deliberately dependency-light so that every other
subpackage (core model, fast simulators, cluster substrate, experiment
harness) can rely on them without import cycles.
"""

from repro.utils.arrays import as_object_column
from repro.utils.gcscope import deferred_gc
from repro.utils.rng import ensure_rng, spawn_rngs, derive_seed
from repro.utils.validation import (
    require,
    is_power_of_two,
    check_power_of_two,
    check_positive,
    check_non_negative,
    check_in_range,
    check_probability,
)

__all__ = [
    "as_object_column",
    "deferred_gc",
    "ensure_rng",
    "spawn_rngs",
    "derive_seed",
    "require",
    "is_power_of_two",
    "check_power_of_two",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_probability",
]
