"""Ablation experiments (library additions, clearly separated from the paper's figures).

Four ablations substantiate claims the paper makes only in prose, or probe
design choices its evaluation does not isolate:

* ``ablation_parallelism`` — the serialization of the global approach vs the
  per-group concurrency of the local approach, measured as makespan and mean
  creation latency on the cluster protocol simulator (sections 1/3/6).
* ``ablation_lifecycle`` — the same parallelism question for the **full
  topology lifecycle**: a churn trace of joins, graceful leaves, crashes
  with replica rebuild, enrollment changes and load-aware rebalance passes
  replayed through the lifecycle protocol simulator
  (:class:`repro.cluster.protocol.LifecycleProtocolSimulator`) under both
  lock structures, across cluster sizes.
* ``ablation_grid`` — the full (Pmin, Vmin) grid behind the statement that
  "increasing Pmin beyond the same value of Vmin decreases sigma by a very
  marginal amount" (section 4.1), which justifies figure 4 showing only the
  diagonal.
* ``ablation_heterogeneous`` — fairness on a heterogeneous cluster, where
  each node's enrollment (vnode count) follows its capacity, compared with
  weighted Consistent Hashing (the motivation of section 1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.protocol import (
    CreationProtocolSimulator,
    ProtocolCosts,
    compare_lifecycle_protocols,
)
from repro.core.config import DHTConfig
from repro.experiments.base import ExperimentResult, Series
from repro.experiments.runner import average_local_runs, default_runs
from repro.metrics.aggregate import tail_mean
from repro.metrics.balance import sigma_from_quotas
from repro.sim.ch import ConsistentHashingSimulator
from repro.sim.local import LocalBalanceSimulator
from repro.utils.rng import derive_seed, spawn_rngs
from repro.workloads.arrivals import StaggeredBatches
from repro.workloads.heterogeneity import CapacityProfile


def run_ablation_parallelism(
    n_snodes_values: Sequence[int] = (8, 16, 32, 64, 128),
    creations_per_snode: int = 4,
    pmin: int = 32,
    vmin: int = 8,
    seed: int = 0,
) -> ExperimentResult:
    """Makespan of a burst of concurrent creations: global vs local protocol.

    Every snode issues ``creations_per_snode`` creation requests at time 0
    (a cluster expansion).  The global approach serializes them all behind a
    DHT-wide barrier; the local approach serializes only per victim group.
    """
    makespans: Dict[str, List[float]] = {"global": [], "local": []}
    latencies: Dict[str, List[float]] = {"global": [], "local": []}
    for n_snodes in n_snodes_values:
        schedule = StaggeredBatches(
            n_batches=1, batch_size=n_snodes * creations_per_snode, gap=0.0, n_snodes=n_snodes
        )
        for approach in ("global", "local"):
            config = (
                DHTConfig.for_global(pmin=pmin)
                if approach == "global"
                else DHTConfig.for_local(pmin=pmin, vmin=vmin)
            )
            sim = CreationProtocolSimulator(
                config,
                n_snodes=n_snodes,
                arrivals=schedule,
                approach=approach,  # type: ignore[arg-type]
                rng=derive_seed(seed, "parallelism", approach, n_snodes),
            )
            stats = sim.run()
            makespans[approach].append(stats.makespan)
            latencies[approach].append(stats.mean_latency)
    x = np.asarray(n_snodes_values, dtype=np.float64)
    return ExperimentResult(
        experiment_id="ablation_parallelism",
        title="Creation burst makespan: global vs local protocol",
        paper_reference="Sections 1, 3, 6 (qualitative parallelism claim)",
        series=[
            Series("global makespan (s)", x, np.asarray(makespans["global"])),
            Series("local makespan (s)", x, np.asarray(makespans["local"])),
            Series("global mean latency (s)", x, np.asarray(latencies["global"])),
            Series("local mean latency (s)", x, np.asarray(latencies["local"])),
        ],
        params={
            "n_snodes_values": list(n_snodes_values),
            "creations_per_snode": creations_per_snode,
            "pmin": pmin,
            "vmin": vmin,
            "seed": seed,
        },
        notes=(
            "The local approach's advantage grows with the cluster size because "
            "its locks cover only one group instead of the whole DHT."
        ),
        x_label="number of snodes",
        y_label="seconds",
    )


def run_ablation_lifecycle(
    n_snodes_values: Sequence[int] = (8, 12, 16, 20),
    events_per_snode: int = 2,
    n_keys: int = 3000,
    batch_size: int = 8,
    gap: float = 0.02,
    pmin: int = 8,
    vmin: int = 4,
    replication_factor: int = 2,
    seed: int = 0,
) -> ExperimentResult:
    """Makespan of concurrent full-lifecycle churn: global vs local protocol.

    The lifecycle analogue of :func:`run_ablation_parallelism`: instead of a
    creation-only burst, the workload is a churn trace mixing all five
    topology event kinds (joins, graceful leaves, crashes with replica
    rebuild, enrollment changes, load-aware rebalance passes), profiled on
    a live replicated DHT and queued in concurrent arrival batches.  The
    global approach synchronizes the GPDR across every snode per event and
    serializes behind the DHT-wide barrier; the local approach locks only
    the touched groups.
    """
    from repro.workloads.churn import ChurnSpec

    makespans: Dict[str, List[float]] = {"global": [], "local": []}
    latencies: Dict[str, List[float]] = {"global": [], "local": []}
    for n_snodes in n_snodes_values:
        spec = ChurnSpec(
            name=f"lifecycle-{n_snodes}",
            n_keys=n_keys,
            n_events=n_snodes * events_per_snode,
            approach="local",
            n_snodes=n_snodes,
            vnodes_per_snode=4,
            min_snodes=max(2, n_snodes // 2),
            max_snodes=2 * n_snodes,
            pmin=pmin,
            vmin=vmin,
            replication_factor=replication_factor,
            crash_weight=0.25,
            rebalance_weight=0.15,
            seed=derive_seed(seed, "lifecycle", n_snodes),
        )
        comparison = compare_lifecycle_protocols(spec, batch_size=batch_size, gap=gap)
        for approach, stats in comparison.results.items():
            makespans[approach].append(stats.makespan)
            latencies[approach].append(stats.mean_latency)
    x = np.asarray(n_snodes_values, dtype=np.float64)
    return ExperimentResult(
        experiment_id="ablation_lifecycle",
        title="Concurrent churn makespan: global vs local protocol",
        paper_reference="Sections 1, 3, 6 (parallelism claim, extended to the full lifecycle)",
        series=[
            Series("global makespan (s)", x, np.asarray(makespans["global"])),
            Series("local makespan (s)", x, np.asarray(makespans["local"])),
            Series("global mean latency (s)", x, np.asarray(latencies["global"])),
            Series("local mean latency (s)", x, np.asarray(latencies["local"])),
        ],
        params={
            "n_snodes_values": list(n_snodes_values),
            "events_per_snode": events_per_snode,
            "n_keys": n_keys,
            "batch_size": batch_size,
            "gap": gap,
            "pmin": pmin,
            "vmin": vmin,
            "replication_factor": replication_factor,
            "seed": seed,
        },
        notes=(
            "Every event kind of the live DHT (join/leave/crash/enrollment/"
            "rebalance) has a simulated control-plane cost; the local "
            "approach overlaps events that touch disjoint groups."
        ),
        x_label="number of snodes",
        y_label="seconds",
    )


def run_ablation_grid(
    pmins: Sequence[int] = (8, 16, 32, 64, 128),
    vmins: Sequence[int] = (8, 16, 32, 64, 128),
    runs: Optional[int] = None,
    n_vnodes: int = 512,
    seed: int = 0,
) -> ExperimentResult:
    """Plateau ``sigma-bar(Qv)`` over the full (Pmin, Vmin) grid.

    Reproduces the claim of section 4.1 that Vmin dominates when groups are
    small and that raising Pmin beyond Vmin brings only marginal gains; one
    series per ``Vmin`` with ``Pmin`` on the x axis.
    """
    runs = runs if runs is not None else max(2, default_runs() // 2)
    series: List[Series] = []
    for vmin in vmins:
        values: List[float] = []
        for pmin in pmins:
            config = DHTConfig.for_local(pmin=pmin, vmin=vmin)
            trace = average_local_runs(
                config, n_vnodes, runs, seed=seed, record_group_metrics=False
            )
            values.append(tail_mean(trace.sigma_qv_percent(), fraction=0.25))
        series.append(
            Series(
                label=f"Vmin={vmin}",
                x=np.asarray(pmins, dtype=np.float64),
                y=np.asarray(values, dtype=np.float64),
                meta={"vmin": vmin},
            )
        )
    return ExperimentResult(
        experiment_id="ablation_grid",
        title="Plateau sigma(Qv) over the (Pmin, Vmin) grid",
        paper_reference="Section 4.1 (justification for plotting only Pmin = Vmin)",
        series=series,
        params={
            "pmins": list(pmins),
            "vmins": list(vmins),
            "runs": runs,
            "n_vnodes": n_vnodes,
            "seed": seed,
        },
        notes=(
            "Within a row (fixed Vmin), increasing Pmin beyond Vmin should change "
            "sigma only marginally; across rows, larger Vmin helps substantially."
        ),
        x_label="Pmin",
        y_label="plateau sigma(Qv) (%)",
    )


def run_ablation_heterogeneous(
    n_nodes: int = 64,
    base_vnodes: int = 4,
    pmin: int = 32,
    vmin: int = 32,
    ch_partitions_per_vnode: int = 8,
    runs: Optional[int] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Fairness on a heterogeneous cluster: capacity-weighted quota deviation.

    Nodes come from three hardware generations; node ``i`` enrolls
    ``enrollment_i`` vnodes proportional to its capacity.  Perfect fairness
    means every node's quota is proportional to its capacity weight, so the
    metric is the relative deviation of ``quota_i / weight_i``.  The baseline
    is Consistent Hashing with virtual servers proportional to the weights.
    """
    runs = runs if runs is not None else default_runs()
    profile = CapacityProfile.generations(n_nodes, rng=derive_seed(seed, "hetero-profile"))
    weights = profile.relative_weights()
    enrollments = profile.enrollments(base_vnodes)
    names = profile.names()
    total_vnodes = sum(enrollments.values())

    local_devs: List[float] = []
    ch_devs: List[float] = []
    for rng in spawn_rngs(derive_seed(seed, "hetero-runs"), runs):
        # Local approach: simulate the creations, then attribute vnode quotas
        # to nodes round-robin weighted by enrollment (vnode j belongs to the
        # node that contributed it).
        sim = LocalBalanceSimulator(DHTConfig.for_local(pmin=pmin, vmin=vmin), rng=rng)
        owner_of_vnode: List[str] = []
        for name in names:
            owner_of_vnode.extend([name] * enrollments[name])
        for _ in range(total_vnodes):
            sim.create_vnode()
        quotas = sim.vnode_quotas()
        node_quota: Dict[str, float] = {name: 0.0 for name in names}
        for vnode_index, quota in enumerate(quotas):
            node_quota[owner_of_vnode[vnode_index]] += float(quota)
        normalized = [node_quota[name] / weights[name] for name in names]
        local_devs.append(sigma_from_quotas(np.asarray(normalized) / np.sum(normalized)))

        # Weighted Consistent Hashing baseline.
        ch = ConsistentHashingSimulator(
            partitions_per_node=ch_partitions_per_vnode * base_vnodes,
            rng=rng,
            weights=[weights[name] for name in names],
        )
        ch.run(n_nodes)
        ch_quotas = ch.node_quotas()
        normalized_ch = [ch_quotas[i] / weights[name] for i, name in enumerate(names)]
        ch_devs.append(sigma_from_quotas(np.asarray(normalized_ch) / np.sum(normalized_ch)))

    x = np.asarray([1.0])
    return ExperimentResult(
        experiment_id="ablation_heterogeneous",
        title="Capacity-weighted fairness on a heterogeneous cluster",
        paper_reference="Section 1 (motivation: heterogeneous cluster nodes)",
        series=[
            Series("local approach (weighted sigma %)", x, np.asarray([100.0 * float(np.mean(local_devs))])),
            Series("weighted CH (weighted sigma %)", x, np.asarray([100.0 * float(np.mean(ch_devs))])),
        ],
        params={
            "n_nodes": n_nodes,
            "base_vnodes": base_vnodes,
            "pmin": pmin,
            "vmin": vmin,
            "runs": runs,
            "seed": seed,
            "total_vnodes": total_vnodes,
        },
        notes=(
            "Lower is better: the deviation of capacity-normalized quotas from "
            "perfect proportional fairness."
        ),
        x_label="(single point)",
        y_label="weighted sigma (%)",
    )
