"""Textual rendering of experiment results (tables and ASCII charts).

The paper presents its evaluation as line charts; since this library is
terminal-first, every figure is rendered as (a) a checkpoint table sampling
each curve at a handful of x positions and (b) an optional ASCII chart.  The
benchmark files print these renderings so ``pytest benchmarks/`` output can
be compared against the paper side by side.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.experiments.base import ExperimentResult, Series
from repro.report.ascii_chart import line_chart
from repro.report.tables import format_table

#: Default x positions at which curves are sampled for tables (matches the
#: gridlines of the paper's figures).
DEFAULT_CHECKPOINTS: Sequence[int] = (1, 64, 128, 256, 384, 512, 640, 768, 896, 1024)


def checkpoint_table(
    result: ExperimentResult, checkpoints: Optional[Sequence[float]] = None
) -> str:
    """Sample every series of the result at the given x checkpoints."""
    if checkpoints is None:
        max_x = max(float(s.x[-1]) for s in result.series)
        checkpoints = [c for c in DEFAULT_CHECKPOINTS if c <= max_x]
        if not checkpoints:
            checkpoints = [max_x]
    headers = [result.x_label] + result.labels()
    rows: List[List[object]] = []
    for checkpoint in checkpoints:
        row: List[object] = [checkpoint]
        for series in result.series:
            row.append(series.value_at(checkpoint))
        rows.append(row)
    return format_table(headers, rows)


def series_table(result: ExperimentResult) -> str:
    """One row per series: final value and basic statistics."""
    headers = ["series", "points", "final", "min", "max", "mean"]
    rows: List[List[object]] = []
    for series in result.series:
        y = np.asarray(series.y, dtype=np.float64)
        rows.append(
            [series.label, len(series), float(y[-1]), float(y.min()), float(y.max()), float(y.mean())]
        )
    return format_table(headers, rows)


def render_result(
    result: ExperimentResult,
    checkpoints: Optional[Sequence[float]] = None,
    chart: bool = True,
    chart_width: int = 78,
    chart_height: int = 18,
) -> str:
    """Full textual rendering of an experiment result."""
    lines: List[str] = []
    lines.append(f"=== {result.experiment_id}: {result.title} ===")
    lines.append(f"paper reference: {result.paper_reference}")
    if result.params:
        params = ", ".join(f"{k}={v}" for k, v in sorted(result.params.items()))
        lines.append(f"parameters: {params}")
    lines.append("")
    lines.append(checkpoint_table(result, checkpoints))
    if chart:
        lines.append("")
        lines.append(
            line_chart(
                [(s.label, s.x, s.y) for s in result.series],
                width=chart_width,
                height=chart_height,
                x_label=result.x_label,
                y_label=result.y_label,
            )
        )
    if result.notes:
        lines.append("")
        lines.append(f"notes: {result.notes}")
    return "\n".join(lines)
