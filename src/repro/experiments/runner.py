"""Run repeated simulations and average them, honouring environment overrides.

The paper averages 100 runs of 1024 vnode creations per configuration.  On a
developer laptop that is a few minutes of CPU per figure, so the harness
defaults to a smaller number of runs and lets the environment scale it up:

``REPRO_RUNS``
    Number of runs to average (default 10; the paper used 100).
``REPRO_VNODES``
    Number of vnodes created per run (default 1024, as in the paper).
``REPRO_NODES``
    Number of physical nodes for the Consistent Hashing comparison
    (default 1024, as in the paper).

EXPERIMENTS.md records which values were used for the committed results.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from repro.core.config import DHTConfig
from repro.sim.ch import ConsistentHashingSimulator
from repro.sim.global_ import GlobalBalanceSimulator
from repro.sim.local import LocalBalanceSimulator
from repro.sim.trace import BalanceTrace, CHTrace
from repro.utils.rng import derive_seed, spawn_rngs

#: Defaults chosen so the full benchmark suite completes in a few minutes.
DEFAULT_RUNS = 10
DEFAULT_N_VNODES = 1024
DEFAULT_N_NODES = 1024


def _env_int(name: str, default: int, minimum: int = 1) -> int:
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return default
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(f"environment variable {name} must be an integer, got {raw!r}") from exc
    if value < minimum:
        raise ValueError(f"environment variable {name} must be >= {minimum}, got {value}")
    return value


def default_runs() -> int:
    """Number of runs to average (``REPRO_RUNS``, default 10; paper used 100)."""
    return _env_int("REPRO_RUNS", DEFAULT_RUNS)


def default_n_vnodes() -> int:
    """Vnodes created per run (``REPRO_VNODES``, default 1024 as in the paper)."""
    return _env_int("REPRO_VNODES", DEFAULT_N_VNODES)


def default_n_nodes() -> int:
    """Physical nodes for the CH comparison (``REPRO_NODES``, default 1024)."""
    return _env_int("REPRO_NODES", DEFAULT_N_NODES)


def average_local_runs(
    config: DHTConfig,
    n_vnodes: int,
    runs: int,
    seed: int = 0,
    record_group_metrics: bool = True,
) -> BalanceTrace:
    """Average ``runs`` runs of the local-approach simulator.

    Every run gets an independent RNG stream derived from ``seed`` and the
    configuration, so results are reproducible and runs are uncorrelated.
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    base = derive_seed(seed, "local", config.pmin, config.vmin or 0, n_vnodes)
    rngs = spawn_rngs(base, runs)
    traces: List[BalanceTrace] = []
    for rng in rngs:
        sim = LocalBalanceSimulator(config, rng=rng)
        traces.append(sim.run(n_vnodes, record_group_metrics=record_group_metrics))
    return BalanceTrace.average(traces)


def average_global_run(config: DHTConfig, n_vnodes: int) -> BalanceTrace:
    """Run the global-approach simulator (deterministic, so a single run)."""
    sim = GlobalBalanceSimulator(config)
    return sim.run(n_vnodes)


def average_ch_runs(
    partitions_per_node: int,
    n_nodes: int,
    runs: int,
    seed: int = 0,
    weights: Optional[Sequence[float]] = None,
) -> CHTrace:
    """Average ``runs`` runs of the Consistent Hashing simulator."""
    if runs < 1:
        raise ValueError("runs must be >= 1")
    base = derive_seed(seed, "ch", partitions_per_node, n_nodes)
    rngs = spawn_rngs(base, runs)
    traces = [
        ConsistentHashingSimulator(partitions_per_node, rng=rng, weights=weights).run(n_nodes)
        for rng in rngs
    ]
    return CHTrace.average(traces)
