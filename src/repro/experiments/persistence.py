"""Saving and loading experiment results.

Experiment runs are cheap to regenerate but expensive at paper fidelity
(``REPRO_RUNS=100``), so the harness can persist results to JSON and reload
them later — e.g. to re-render tables, compare against a newer run, or fill
in EXPERIMENTS.md without re-simulating.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.experiments.base import ExperimentResult, Series

PathLike = Union[str, Path]

#: File format version.
RESULT_FORMAT_VERSION = 1


def result_to_json(result: ExperimentResult) -> str:
    """Serialize an experiment result to a JSON string."""
    payload = {"format_version": RESULT_FORMAT_VERSION, "result": result.to_dict()}
    return json.dumps(payload, indent=2, sort_keys=True)


def result_from_json(text: str) -> ExperimentResult:
    """Rebuild an experiment result from :func:`result_to_json` output."""
    payload = json.loads(text)
    version = payload.get("format_version")
    if version != RESULT_FORMAT_VERSION:
        raise ValueError(f"unsupported result format version {version!r}")
    data = payload["result"]
    series = [
        Series(
            label=s["label"],
            x=np.asarray(s["x"], dtype=np.float64),
            y=np.asarray(s["y"], dtype=np.float64),
            meta=dict(s.get("meta", {})),
        )
        for s in data["series"]
    ]
    return ExperimentResult(
        experiment_id=data["experiment_id"],
        title=data["title"],
        paper_reference=data["paper_reference"],
        series=series,
        params=dict(data.get("params", {})),
        notes=data.get("notes", ""),
        x_label=data.get("x_label", "x"),
        y_label=data.get("y_label", "y"),
    )


def save_result(result: ExperimentResult, path: PathLike) -> Path:
    """Write an experiment result to a JSON file and return its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(result_to_json(result), encoding="utf-8")
    return path


def load_result(path: PathLike) -> ExperimentResult:
    """Load an experiment result from a JSON file."""
    return result_from_json(Path(path).read_text(encoding="utf-8"))


def compare_results(
    reference: ExperimentResult, candidate: ExperimentResult
) -> Dict[str, Dict[str, float]]:
    """Compare the final values of matching series of two results.

    Returns ``{series label: {"reference": ..., "candidate": ..., "abs_diff": ...}}``
    for every label present in both results — the core of a regression check
    between two runs of the same experiment (e.g. before/after a code change,
    or 10-run vs 100-run fidelity).
    """
    comparison: Dict[str, Dict[str, float]] = {}
    candidate_labels = set(candidate.labels())
    for series in reference.series:
        if series.label not in candidate_labels:
            continue
        ref_final = series.final()
        cand_final = candidate.get(series.label).final()
        comparison[series.label] = {
            "reference": ref_final,
            "candidate": cand_final,
            "abs_diff": abs(ref_final - cand_final),
        }
    return comparison
