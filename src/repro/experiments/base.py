"""Result containers shared by every experiment definition."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np


@dataclass
class Series:
    """One labelled curve of an experiment (a line of a paper figure)."""

    label: str
    x: np.ndarray
    y: np.ndarray
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x)
        self.y = np.asarray(self.y)
        if self.x.shape != self.y.shape:
            raise ValueError(
                f"series {self.label!r}: x and y have different shapes "
                f"{self.x.shape} vs {self.y.shape}"
            )

    def __len__(self) -> int:
        return len(self.x)

    def value_at(self, x: float) -> float:
        """y value at the sample closest to ``x``."""
        index = int(np.argmin(np.abs(self.x - x)))
        return float(self.y[index])

    def final(self) -> float:
        """The last y value of the series."""
        return float(self.y[-1])

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict view (for JSON serialization)."""
        return {
            "label": self.label,
            "x": self.x.tolist(),
            "y": self.y.tolist(),
            "meta": dict(self.meta),
        }


@dataclass
class ExperimentResult:
    """Everything produced by one experiment run."""

    experiment_id: str
    title: str
    paper_reference: str
    series: List[Series]
    params: Dict[str, Any] = field(default_factory=dict)
    notes: str = ""
    x_label: str = "overall number of vnodes"
    y_label: str = "quality of the balancement (%)"

    def get(self, label: str) -> Series:
        """The series with the given label."""
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(f"no series labelled {label!r} in experiment {self.experiment_id}")

    def labels(self) -> List[str]:
        """Labels of every series."""
        return [s.label for s in self.series]

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict view (for JSON serialization)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "paper_reference": self.paper_reference,
            "params": dict(self.params),
            "notes": self.notes,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": [s.to_dict() for s in self.series],
        }
