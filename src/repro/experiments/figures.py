"""Experiment definitions for every figure of the paper's evaluation (§4).

Figures 1-3 of the paper are architecture diagrams; the evaluation consists
of figures 4-9 plus a few claims stated only in the text.  Each function
below regenerates one of them and returns an
:class:`~repro.experiments.base.ExperimentResult` whose series carry the
same labels as the paper's legends.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import DHTConfig
from repro.experiments.base import ExperimentResult, Series
from repro.experiments.runner import (
    average_ch_runs,
    average_local_runs,
    default_n_nodes,
    default_n_vnodes,
    default_runs,
)
from repro.metrics.aggregate import tail_mean
from repro.metrics.theta import theta_scores

#: (Pmin, Vmin) pairs of figure 4.
FIG4_PAIRS: Tuple[int, ...] = (8, 16, 32, 64, 128)
#: Vmin values of figure 6 (Pmin fixed at 32).
FIG6_VMINS: Tuple[int, ...] = (8, 16, 32, 64, 128, 256, 512)
#: Local-approach Vmin values of figure 9 (Pmin fixed at 32).
FIG9_VMINS: Tuple[int, ...] = (32, 64, 128, 256, 512)
#: Consistent Hashing partitions-per-node values of figure 9.
FIG9_CH_PARTITIONS: Tuple[int, ...] = (32, 64)


def run_fig4(
    runs: Optional[int] = None,
    n_vnodes: Optional[int] = None,
    pairs: Sequence[int] = FIG4_PAIRS,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 4: ``sigma-bar(Qv)`` vs. vnodes for ``Pmin = Vmin`` in {8..128}."""
    runs = runs if runs is not None else default_runs()
    n_vnodes = n_vnodes if n_vnodes is not None else default_n_vnodes()
    series: List[Series] = []
    for value in pairs:
        config = DHTConfig.for_local(pmin=value, vmin=value)
        trace = average_local_runs(
            config, n_vnodes, runs, seed=seed, record_group_metrics=False
        )
        series.append(
            Series(
                label=f"(Pmin,Vmin)=({value},{value})",
                x=trace.n_vnodes,
                y=trace.sigma_qv_percent(),
                meta={"pmin": value, "vmin": value},
            )
        )
    return ExperimentResult(
        experiment_id="fig4",
        title="Quality of the balancement when Pmin = Vmin",
        paper_reference="Figure 4",
        series=series,
        params={"runs": runs, "n_vnodes": n_vnodes, "pairs": list(pairs), "seed": seed},
        notes=(
            "Larger Pmin = Vmin improves the balance; each curve is flat inside "
            "the single-group zone (V <= Vmax) and stabilizes after a transient "
            "once groups start splitting."
        ),
    )


def run_fig5(
    runs: Optional[int] = None,
    n_vnodes: Optional[int] = None,
    vmins: Sequence[int] = FIG4_PAIRS,
    alpha: float = 0.5,
    beta: float = 0.5,
    seed: int = 0,
    fig4_result: Optional[ExperimentResult] = None,
) -> ExperimentResult:
    """Figure 5: the θ tradeoff metric vs. ``Vmin`` (α = β = 0.5).

    θ combines the resources proportional to ``Vmin`` with the balance
    quality obtained in figure 4; the paper finds the minimum at ``Vmin=32``.
    An existing figure-4 result can be passed in to avoid re-simulating.
    """
    if fig4_result is None:
        fig4_result = run_fig4(runs=runs, n_vnodes=n_vnodes, pairs=vmins, seed=seed)
    sigma_by_vmin: Dict[int, float] = {}
    for series in fig4_result.series:
        vmin = int(series.meta["vmin"])
        if vmin in vmins:
            sigma_by_vmin[vmin] = series.final()
    scores = theta_scores(sigma_by_vmin, alpha=alpha, beta=beta)
    ordered = sorted(scores)
    return ExperimentResult(
        experiment_id="fig5",
        title="θ for Vmin in {8, 16, 32, 64, 128}",
        paper_reference="Figure 5",
        series=[
            Series(
                label="theta",
                x=np.asarray(ordered, dtype=np.float64),
                y=np.asarray([scores[v] for v in ordered], dtype=np.float64),
                meta={"alpha": alpha, "beta": beta, "sigma_by_vmin": sigma_by_vmin},
            )
        ],
        params=dict(fig4_result.params, alpha=alpha, beta=beta),
        notes="The paper selects the Vmin that minimizes θ (32 with α = β = 0.5).",
        x_label="Vmin",
        y_label="theta",
    )


def run_fig6(
    runs: Optional[int] = None,
    n_vnodes: Optional[int] = None,
    pmin: int = 32,
    vmins: Sequence[int] = FIG6_VMINS,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 6: ``sigma-bar(Qv)`` vs. vnodes for ``Pmin = 32`` and varying ``Vmin``.

    ``Vmin = 512`` (``Vmax = 1024``) keeps every vnode in one group for the
    whole run, so that curve coincides with the global approach.
    """
    runs = runs if runs is not None else default_runs()
    n_vnodes = n_vnodes if n_vnodes is not None else default_n_vnodes()
    series: List[Series] = []
    for vmin in vmins:
        config = DHTConfig.for_local(pmin=pmin, vmin=vmin)
        trace = average_local_runs(
            config, n_vnodes, runs, seed=seed, record_group_metrics=False
        )
        series.append(
            Series(
                label=f"Vmin={vmin}",
                x=trace.n_vnodes,
                y=trace.sigma_qv_percent(),
                meta={"pmin": pmin, "vmin": vmin},
            )
        )
    return ExperimentResult(
        experiment_id="fig6",
        title="Degradation of the balance quality as Vmin decreases (Pmin = 32)",
        paper_reference="Figure 6",
        series=series,
        params={
            "runs": runs,
            "n_vnodes": n_vnodes,
            "pmin": pmin,
            "vmins": list(vmins),
            "seed": seed,
        },
        notes=(
            "Smaller Vmin means more, smaller groups and a worse overall balance; "
            "the largest Vmin that keeps a single group matches the global approach."
        ),
    )


def run_fig7(
    runs: Optional[int] = None,
    n_vnodes: Optional[int] = None,
    pmin: int = 32,
    vmin: int = 32,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 7: evolution of the real vs. ideal number of groups (Pmin = Vmin = 32)."""
    runs = runs if runs is not None else default_runs()
    n_vnodes = n_vnodes if n_vnodes is not None else default_n_vnodes()
    config = DHTConfig.for_local(pmin=pmin, vmin=vmin)
    trace = average_local_runs(config, n_vnodes, runs, seed=seed)
    return ExperimentResult(
        experiment_id="fig7",
        title="Evolution of the number of groups",
        paper_reference="Figure 7",
        series=[
            Series(label="Greal", x=trace.n_vnodes, y=trace.n_groups,
                   meta={"pmin": pmin, "vmin": vmin}),
            Series(label="Gideal", x=trace.n_vnodes, y=trace.g_ideal.astype(np.float64),
                   meta={"pmin": pmin, "vmin": vmin}),
        ],
        params={"runs": runs, "n_vnodes": n_vnodes, "pmin": pmin, "vmin": vmin, "seed": seed},
        notes=(
            "Group creation is asynchronous: groups appear before and after the "
            "ideal power-of-two boundaries, and the divergence widens as V grows."
        ),
        y_label="overall number of groups",
    )


def run_fig8(
    runs: Optional[int] = None,
    n_vnodes: Optional[int] = None,
    pmin: int = 32,
    vmin: int = 32,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 8: ``sigma-bar(Qg)`` (balance between groups) over the same run as fig. 7."""
    runs = runs if runs is not None else default_runs()
    n_vnodes = n_vnodes if n_vnodes is not None else default_n_vnodes()
    config = DHTConfig.for_local(pmin=pmin, vmin=vmin)
    trace = average_local_runs(config, n_vnodes, runs, seed=seed)
    return ExperimentResult(
        experiment_id="fig8",
        title="Evolution of the balance between groups",
        paper_reference="Figure 8",
        series=[
            Series(label="sigma(Qg)", x=trace.n_vnodes, y=trace.sigma_qg_percent(),
                   meta={"pmin": pmin, "vmin": vmin}),
        ],
        params={"runs": runs, "n_vnodes": n_vnodes, "pmin": pmin, "vmin": vmin, "seed": seed},
        notes=(
            "Spikes of sigma(Qg) coincide with the divergence between Greal and "
            "Gideal: whenever group splitting is premature or late, groups with "
            "very different quotas coexist."
        ),
        y_label="quality of the balancement between groups (%)",
    )


def run_fig9(
    runs: Optional[int] = None,
    n_nodes: Optional[int] = None,
    pmin: int = 32,
    vmins: Sequence[int] = FIG9_VMINS,
    ch_partitions: Sequence[int] = FIG9_CH_PARTITIONS,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 9: comparison with Consistent Hashing on homogeneous nodes.

    One vnode per snode and one snode per physical node, so the per-node
    metric ``sigma-bar(Qn)`` of the local approach equals ``sigma-bar(Qv)``;
    CH places 32 or 64 random partitions per node.
    """
    runs = runs if runs is not None else default_runs()
    n_nodes = n_nodes if n_nodes is not None else default_n_nodes()
    series: List[Series] = []
    for k in ch_partitions:
        trace = average_ch_runs(k, n_nodes, runs, seed=seed)
        series.append(
            Series(
                label=f"CH, {k} partitions/node",
                x=trace.n_nodes,
                y=trace.sigma_qn_percent(),
                meta={"model": "consistent-hashing", "partitions_per_node": k},
            )
        )
    for vmin in vmins:
        config = DHTConfig.for_local(pmin=pmin, vmin=vmin)
        trace = average_local_runs(
            config, n_nodes, runs, seed=seed, record_group_metrics=False
        )
        series.append(
            Series(
                label=f"local approach, Vmin={vmin}",
                x=trace.n_vnodes,
                y=trace.sigma_qv_percent(),
                meta={"model": "local", "pmin": pmin, "vmin": vmin},
            )
        )
    return ExperimentResult(
        experiment_id="fig9",
        title="Evolution of sigma(Qn): local approach vs Consistent Hashing",
        paper_reference="Figure 9",
        series=series,
        params={
            "runs": runs,
            "n_nodes": n_nodes,
            "pmin": pmin,
            "vmins": list(vmins),
            "ch_partitions": list(ch_partitions),
            "seed": seed,
        },
        notes=(
            "With a properly chosen Vmin the local approach balances the hash "
            "space better than Consistent Hashing with a comparable number of "
            "partitions per node."
        ),
        x_label="overall number of cluster nodes",
    )


def run_claim_doubling(
    runs: Optional[int] = None,
    n_vnodes: Optional[int] = None,
    pairs: Sequence[int] = FIG4_PAIRS,
    seed: int = 0,
    fig4_result: Optional[ExperimentResult] = None,
) -> ExperimentResult:
    """Text claim of §4.1.1: doubling Pmin and Vmin lowers ``sigma`` by ~30 %.

    The claim concerns the "2nd zone" (after groups start splitting); we use
    the mean over the last quarter of each curve as the plateau value and
    report the relative drop between consecutive (Pmin, Vmin) doublings.
    """
    if fig4_result is None:
        fig4_result = run_fig4(runs=runs, n_vnodes=n_vnodes, pairs=pairs, seed=seed)
    plateaus: Dict[int, float] = {}
    for series in fig4_result.series:
        vmin = int(series.meta["vmin"])
        plateaus[vmin] = tail_mean(series.y, fraction=0.25)
    ordered = sorted(plateaus)
    drops: List[float] = []
    for smaller, larger in zip(ordered, ordered[1:]):
        if plateaus[smaller] > 0:
            drops.append(100.0 * (1.0 - plateaus[larger] / plateaus[smaller]))
        else:
            drops.append(0.0)
    return ExperimentResult(
        experiment_id="claim_doubling",
        title="Relative sigma decrease when doubling Pmin and Vmin",
        paper_reference="Section 4.1.1 (text claim: ~30% per doubling)",
        series=[
            Series(
                label="plateau sigma (%)",
                x=np.asarray(ordered, dtype=np.float64),
                y=np.asarray([plateaus[v] for v in ordered], dtype=np.float64),
            ),
            Series(
                label="drop vs previous (%)",
                x=np.asarray(ordered[1:], dtype=np.float64),
                y=np.asarray(drops, dtype=np.float64),
            ),
        ],
        params=dict(fig4_result.params),
        notes="The paper reports a decrease of nearly 30% for each doubling.",
        x_label="Pmin = Vmin",
        y_label="percent",
    )


def run_claim_8192(
    runs: Optional[int] = None,
    n_vnodes: int = 8192,
    pmin: int = 32,
    vmin: int = 32,
    seed: int = 0,
) -> ExperimentResult:
    """Text claim of §4.1.1: ``sigma`` stays stable out to 8192 vnodes.

    Uses fewer runs by default (the run is 8x longer than the paper's 1024).
    """
    runs = runs if runs is not None else max(1, default_runs() // 2)
    config = DHTConfig.for_local(pmin=pmin, vmin=vmin)
    trace = average_local_runs(config, n_vnodes, runs, seed=seed, record_group_metrics=False)
    sigma = trace.sigma_qv_percent()
    # Stability summary: plateau value over successive windows of 1024 vnodes.
    window = 1024
    centers: List[float] = []
    values: List[float] = []
    for start in range(window, n_vnodes + 1, window):
        centers.append(float(start))
        values.append(float(np.mean(sigma[start - window // 4 : start])))
    return ExperimentResult(
        experiment_id="claim_8192",
        title="Stability of sigma(Qv) up to 8192 vnodes (Pmin = Vmin = 32)",
        paper_reference="Section 4.1.1 (text claim: stable after the initial increase)",
        series=[
            Series(label="sigma(Qv)", x=trace.n_vnodes, y=sigma,
                   meta={"pmin": pmin, "vmin": vmin}),
            Series(label="windowed plateau", x=np.asarray(centers), y=np.asarray(values)),
        ],
        params={"runs": runs, "n_vnodes": n_vnodes, "pmin": pmin, "vmin": vmin, "seed": seed},
        notes="After the initial transient the curve should stay roughly flat.",
    )
