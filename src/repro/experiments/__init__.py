"""Experiment harness: one definition per figure/claim of the paper's evaluation.

Every experiment produces an :class:`~repro.experiments.base.ExperimentResult`
containing labelled (x, y) series, the parameters used and a pointer to the
paper figure it reproduces.  The benchmark files under ``benchmarks/`` are
thin wrappers that run these definitions and print the resulting tables, so
the same code path serves interactive use, tests and benchmarking.
"""

from repro.experiments.base import ExperimentResult, Series
from repro.experiments.runner import (
    average_ch_runs,
    average_global_run,
    average_local_runs,
    default_n_nodes,
    default_n_vnodes,
    default_runs,
)
from repro.experiments.figures import (
    run_claim_8192,
    run_claim_doubling,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
)
from repro.experiments.ablations import (
    run_ablation_grid,
    run_ablation_heterogeneous,
    run_ablation_lifecycle,
    run_ablation_parallelism,
)
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments, run_experiment
from repro.experiments.report import checkpoint_table, render_result, series_table
from repro.experiments.persistence import (
    compare_results,
    load_result,
    result_from_json,
    result_to_json,
    save_result,
)

__all__ = [
    "ExperimentResult",
    "Series",
    "default_runs",
    "default_n_vnodes",
    "default_n_nodes",
    "average_local_runs",
    "average_global_run",
    "average_ch_runs",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_claim_doubling",
    "run_claim_8192",
    "run_ablation_grid",
    "run_ablation_parallelism",
    "run_ablation_lifecycle",
    "run_ablation_heterogeneous",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
    "run_experiment",
    "render_result",
    "series_table",
    "checkpoint_table",
    "save_result",
    "load_result",
    "result_to_json",
    "result_from_json",
    "compare_results",
]
