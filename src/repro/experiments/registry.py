"""Registry mapping experiment identifiers to their runner functions.

The identifiers match the experiment index of docs/paper-mapping.md and the benchmark
file names, so ``run_experiment("fig4")`` regenerates exactly what
``pytest benchmarks/bench_fig4.py`` prints.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.experiments.ablations import (
    run_ablation_grid,
    run_ablation_heterogeneous,
    run_ablation_lifecycle,
    run_ablation_parallelism,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.figures import (
    run_claim_8192,
    run_claim_doubling,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
)

ExperimentFn = Callable[..., ExperimentResult]

#: All registered experiments, keyed by identifier.
EXPERIMENTS: Dict[str, ExperimentFn] = {
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "claim_doubling": run_claim_doubling,
    "claim_8192": run_claim_8192,
    "ablation_parallelism": run_ablation_parallelism,
    "ablation_lifecycle": run_ablation_lifecycle,
    "ablation_grid": run_ablation_grid,
    "ablation_heterogeneous": run_ablation_heterogeneous,
}


def list_experiments() -> List[str]:
    """Identifiers of every registered experiment."""
    return sorted(EXPERIMENTS)


def get_experiment(experiment_id: str) -> ExperimentFn:
    """The runner function of an experiment."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(list_experiments())
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}") from None


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run an experiment by identifier."""
    return get_experiment(experiment_id)(**kwargs)
