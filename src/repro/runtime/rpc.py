"""RPC client: persistent connection, per-request timeout, bounded retry.

One :class:`RpcClient` owns one connection to one served snode.  Requests
are written as frames carrying a fresh request id; a background reader task
resolves the matching future when the response frame arrives, so many
requests can be in flight on the same connection.

A request that times out poisons the connection (the response may arrive
later and would desynchronize the id space of a naive retry), so the
client closes it, reconnects, and retries — up to ``retries`` times before
raising :class:`RpcTimeoutError`.  Error replies (``Ack.error``) are
re-raised as typed exceptions: ``KeyError`` comes back as a real
``KeyError`` so replica-fallback reads can catch it, everything else as
:class:`RpcRemoteError`.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Tuple, Union

from repro.cluster.messages import Ack, Message
from repro.runtime.codec import read_frame, write_frame

#: Address of a served snode: ``("host", port)`` for TCP or a unix socket path.
Address = Union[Tuple[str, int], str]


class RpcError(Exception):
    """Base class of RPC-layer failures."""


class RpcTimeoutError(RpcError):
    """The request was retried ``retries`` times and never got a response."""


class RpcConnectionError(RpcError):
    """The peer is unreachable or hung up mid-exchange."""


class RpcRemoteError(RpcError):
    """The remote handler raised; carries the exception kind and message."""

    def __init__(self, kind: str, detail: str):
        super().__init__(f"{kind}: {detail}")
        self.kind = kind
        self.detail = detail


def _raise_remote(ack: Ack) -> None:
    kind, _, detail = (ack.error or "").partition(": ")
    if kind == "KeyError":
        raise KeyError(ack.payload if ack.payload is not None else detail)
    raise RpcRemoteError(kind or "RemoteError", detail)


class RpcClient:
    """Client end of one snode connection."""

    def __init__(
        self,
        address: Address,
        *,
        timeout: float = 5.0,
        retries: int = 2,
    ):
        self.address = address
        self.timeout = timeout
        self.retries = retries
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._pending: Dict[int, "asyncio.Future[Message]"] = {}
        self._next_id = 1
        self._lock = asyncio.Lock()
        #: Wall-clock seconds of every completed call, for latency profiles.
        self.call_durations: list = []
        #: On-wire bytes written/read on this connection (frames included) —
        #: the per-connection accounting that proves row payloads flow
        #: peer-to-peer while the coordinator link stays metadata-only.
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- connection lifecycle --------------------------------------------------

    async def _connect(self) -> None:
        if isinstance(self.address, str):
            reader, writer = await asyncio.open_unix_connection(self.address)
        else:
            host, port = self.address
            reader, writer = await asyncio.open_connection(host, port)
        self._writer = writer
        self._reader_task = asyncio.ensure_future(self._read_loop(reader))

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                request_id, is_response, message, n_bytes = await read_frame(reader)
                self.bytes_received += n_bytes
                future = self._pending.pop(request_id, None)
                if future is not None and not future.done() and is_response:
                    future.set_result(message)
        except (asyncio.IncompleteReadError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._fail_pending(RpcConnectionError(f"connection to {self.address} lost"))

    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    async def close(self) -> None:
        """Close the connection; in-flight requests fail with a connection error."""
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except Exception:
                pass
            self._writer = None
        self._fail_pending(RpcConnectionError(f"connection to {self.address} closed"))

    # -- calls -----------------------------------------------------------------

    async def call(
        self, message: Message, *, timeout: Optional[float] = None
    ) -> Message:
        """Send ``message`` and return the response message.

        Retries (with a fresh connection) on timeout and on connection
        loss; raises :class:`RpcTimeoutError` / :class:`RpcConnectionError`
        once the retry budget is spent.  Error replies are re-raised as
        typed exceptions (see module docstring).
        """
        loop = asyncio.get_event_loop()
        deadline = timeout if timeout is not None else self.timeout
        last_error: Exception = RpcConnectionError(f"never reached {self.address}")
        for _ in range(self.retries + 1):
            started = loop.time()
            try:
                response = await self._attempt(message, deadline)
            except asyncio.TimeoutError:
                last_error = RpcTimeoutError(
                    f"{type(message).__name__} to {self.address} timed out "
                    f"after {deadline}s"
                )
                await self.close()
                continue
            except (RpcConnectionError, ConnectionError, OSError) as exc:
                last_error = (
                    exc
                    if isinstance(exc, RpcConnectionError)
                    else RpcConnectionError(str(exc))
                )
                await self.close()
                continue
            self.call_durations.append(loop.time() - started)
            if isinstance(response, Ack) and response.error is not None:
                _raise_remote(response)
            return response
        raise last_error

    async def _attempt(self, message: Message, timeout: float) -> Message:
        async with self._lock:
            if self._writer is None:
                await self._connect()
            request_id = self._next_id
            self._next_id += 1
            future: "asyncio.Future[Message]" = asyncio.get_event_loop().create_future()
            self._pending[request_id] = future
            assert self._writer is not None
            self.bytes_sent += await write_frame(self._writer, request_id, message)
        try:
            return await asyncio.wait_for(future, timeout)
        finally:
            self._pending.pop(request_id, None)


__all__ = [
    "Address",
    "RpcClient",
    "RpcConnectionError",
    "RpcError",
    "RpcRemoteError",
    "RpcTimeoutError",
]
