"""Networked snode runtime: real asyncio servers speaking the typed protocol.

The simulation models the cluster protocol as typed messages priced by a
network model; this package *runs* it.  Each snode becomes an asyncio-served
endpoint (``asyncio.start_server`` over TCP or unix sockets) hosting the
PR-7 engine subsystems — a :class:`~repro.core.storage.DHTStorage`, a local
topology view and a :class:`~repro.core.engine.placement.PlacementService`
— behind an RPC dispatcher.  The messages of
:mod:`repro.cluster.messages` are the wire format (length-prefixed frames,
see :mod:`repro.runtime.codec`).

Layers:

- :mod:`repro.runtime.codec` — frame encoding over asyncio streams.
- :mod:`repro.runtime.rpc` — client with per-request timeout and bounded
  retry over a persistent connection.
- :mod:`repro.runtime.node` — the served snode: storage + dispatcher.
- :mod:`repro.runtime.client` — cluster client: routing, replica fan-out.
- :mod:`repro.runtime.faults` — crash / kill-9 / pause fault injection.
- :mod:`repro.runtime.harness` — boots K nodes, replays churn traces, and
  runs the protocol simulator as a differential oracle.
"""

from repro.runtime.client import ClusterClient
from repro.runtime.faults import FaultInjector
from repro.runtime.harness import ClusterHarness, HarnessReport
from repro.runtime.node import SnodeNode, SnodeServer
from repro.runtime.rpc import RpcClient, RpcError, RpcTimeoutError

__all__ = [
    "ClusterClient",
    "ClusterHarness",
    "FaultInjector",
    "HarnessReport",
    "RpcClient",
    "RpcError",
    "RpcTimeoutError",
    "SnodeNode",
    "SnodeServer",
]
