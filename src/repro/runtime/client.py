"""Cluster client: routing plus Dynamo-style replica fan-out over RPC.

The client holds its own :class:`~repro.runtime.node.NodeTopologyView` and
:class:`~repro.core.engine.placement.PlacementService` — the same pushed
snapshot every node gets — so it routes without asking anyone.  Writes go
to the primary owner and fan out to every replica; reads try the primary
first and fall back to the replicas when the primary is unreachable (a
crash the coordinator has not yet healed), which is exactly the
availability story replication pays for.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.messages import (
    BulkLoadChunk,
    DeleteRequest,
    GetRequest,
    PutRequest,
)
from repro.core.engine.placement import PlacementService
from repro.core.hashspace import HashSpace, Partition
from repro.core.ids import VnodeRef
from repro.runtime.node import NodeTopologyView
from repro.runtime.rpc import RpcClient, RpcError

#: ``src`` id the coordinator/client stamps on its messages.
COORDINATOR_ID = -1


class ClusterClient:
    """Data-plane client of a served cluster."""

    def __init__(self, *, bh: int, replication_factor: int = 1):
        self.hash_space = HashSpace(bh)
        self.replication_factor = replication_factor
        self.view = NodeTopologyView()
        self.placement = PlacementService(
            self.hash_space, self.view, replication_factor, replication_factor - 1
        )
        self._rpc: Dict[int, RpcClient] = {}

    # -- membership ------------------------------------------------------------

    def connect(self, snode_id: int, rpc: RpcClient) -> None:
        self._rpc[snode_id] = rpc

    def disconnect(self, snode_id: int) -> Optional[RpcClient]:
        return self._rpc.pop(snode_id, None)

    def rpc_for(self, snode_id: int) -> RpcClient:
        return self._rpc[snode_id]

    def update_topology(
        self, version: int, entries: List[Tuple[Partition, VnodeRef]]
    ) -> None:
        self.view.update(version, entries)

    # -- single-key operations -------------------------------------------------

    async def put(self, key: Hashable, value: Any) -> None:
        """Write one item to its primary owner, fanning out to every replica."""
        index = self.hash_space.hash_key(key)
        partition, ref = self.placement.locate(index)
        await self._call_vnode(
            ref,
            PutRequest(
                src=COORDINATOR_ID,
                dst=ref.snode.value,
                ref=ref.canonical_name,
                key=key,
                index=index,
                value=value,
            ),
        )
        for replica in self.placement.replicas_of(partition):
            await self._call_vnode(
                replica,
                PutRequest(
                    src=COORDINATOR_ID,
                    dst=replica.snode.value,
                    ref=replica.canonical_name,
                    tier="replica",
                    key=key,
                    index=index,
                    value=value,
                ),
            )

    async def get(self, key: Hashable) -> Any:
        """Read one item; replicas answer when the primary is unreachable.

        Raises :class:`KeyError` if the key is genuinely absent and an
        :class:`~repro.runtime.rpc.RpcError` when no holder responded.
        """
        index = self.hash_space.hash_key(key)
        partition, ref = self.placement.locate(index)
        try:
            response = await self._call_vnode(
                ref,
                GetRequest(
                    src=COORDINATOR_ID,
                    dst=ref.snode.value,
                    ref=ref.canonical_name,
                    key=key,
                ),
            )
            return response.payload
        except RpcError as primary_error:
            last: Exception = primary_error
            for replica in self.placement.replicas_of(partition):
                try:
                    response = await self._call_vnode(
                        replica,
                        GetRequest(
                            src=COORDINATOR_ID,
                            dst=replica.snode.value,
                            ref=replica.canonical_name,
                            tier="replica",
                            key=key,
                        ),
                    )
                    return response.payload
                except RpcError as exc:
                    last = exc
            raise last

    async def delete(self, key: Hashable) -> Any:
        """Delete one item from its primary and every replica."""
        index = self.hash_space.hash_key(key)
        partition, ref = self.placement.locate(index)
        response = await self._call_vnode(
            ref,
            DeleteRequest(
                src=COORDINATOR_ID,
                dst=ref.snode.value,
                ref=ref.canonical_name,
                key=key,
            ),
        )
        for replica in self.placement.replicas_of(partition):
            await self._call_vnode(
                replica,
                DeleteRequest(
                    src=COORDINATOR_ID,
                    dst=replica.snode.value,
                    ref=replica.canonical_name,
                    tier="replica",
                    key=key,
                ),
            )
        return response.payload

    # -- bulk operations -------------------------------------------------------

    async def bulk_load(
        self,
        keys: Sequence[Hashable],
        values: Optional[Sequence[Any]] = None,
    ) -> int:
        """Columnar bulk load: one chunk RPC per target vnode (plus replicas).

        Keys are hashed and routed client-side, grouped by owning vnode with
        one argsort, and shipped as :class:`~repro.cluster.messages.BulkLoadChunk`
        messages — the networked twin of the engine's ``bulk_load``.
        """
        key_column = np.asarray(keys) if not isinstance(keys, np.ndarray) else keys
        if len(key_column) == 0:
            return 0
        value_column = None
        if values is not None:
            value_column = np.asarray(values, dtype=object)
        indexes = self.hash_space.hash_keys(key_column)
        positions = self.placement.locate_batch(indexes)
        order = np.argsort(positions, kind="stable")
        sorted_positions = positions[order]
        boundaries = np.nonzero(np.diff(sorted_positions))[0] + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(sorted_positions)]))
        router = self.placement.router()
        replicated = self.replication_factor > 1
        placement = self.placement.placement() if replicated else None
        loaded = 0
        for lo, hi in zip(starts, ends):
            rows = order[lo:hi]
            position = int(sorted_positions[lo])
            partition, ref = router.entry_at(position)
            chunk_keys = key_column[rows]
            chunk_indexes = indexes[rows]
            chunk_values = value_column[rows] if value_column is not None else None
            response = await self._call_vnode(
                ref,
                BulkLoadChunk(
                    src=COORDINATOR_ID,
                    dst=ref.snode.value,
                    ref=ref.canonical_name,
                    keys=chunk_keys,
                    indexes=chunk_indexes,
                    values=chunk_values,
                ),
            )
            loaded += int(response.payload)
            if placement is not None:
                for replica in placement.replicas_at(position):
                    await self._call_vnode(
                        replica,
                        BulkLoadChunk(
                            src=COORDINATOR_ID,
                            dst=replica.snode.value,
                            ref=replica.canonical_name,
                            tier="replica",
                            keys=chunk_keys,
                            indexes=chunk_indexes,
                            values=chunk_values,
                        ),
                    )
        return loaded

    # -- plumbing --------------------------------------------------------------

    async def _call_vnode(self, ref: VnodeRef, message):
        try:
            rpc = self._rpc[ref.snode.value]
        except KeyError:
            raise RpcError(f"no connection to snode {ref.snode.value}") from None
        return await rpc.call(message)


__all__ = ["COORDINATOR_ID", "ClusterClient"]
