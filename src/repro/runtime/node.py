"""The served snode: engine storage + placement behind an RPC dispatcher.

A :class:`SnodeNode` is the state of one runtime snode — a
:class:`~repro.core.storage.DHTStorage` (optionally durable, rooted in the
node's own data directory so canonical vnode names never collide across
nodes), a coordinator-pushed :class:`NodeTopologyView`, and a
:class:`~repro.core.engine.placement.PlacementService` rebuilt lazily from
the view exactly like the single-process engine rebuilds from its
membership plane.  The dispatcher maps each typed request message to the
engine's public API and wraps the result (or the exception kind) in an
:class:`~repro.cluster.messages.Ack`.

:class:`SnodeServer` serves a node over asyncio (TCP or unix socket): one
frame-decoding loop per connection, responses matched to requests by id.
The server is where faults bite: a *paused* server keeps reading but stops
responding (requests time out, exactly like a hung process), a *killed*
server drops every connection and refuses new ones.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.cluster.messages import (
    Ack,
    BulkLoadChunk,
    DeleteRequest,
    GetRequest,
    LookupRequest,
    Message,
    NodeStatsRequest,
    PeerTransferRequest,
    PingRequest,
    PutRequest,
    RangeAdopt,
    RangeCount,
    RangeDrop,
    RangeExtract,
    RangeRetain,
    RestartNotice,
    TopologySnapshot,
    VnodeCreate,
    VnodeDrop,
    WalReplay,
)
from repro.core.durability import DurabilityConfig
from repro.core.engine.placement import PlacementService
from repro.core.hashspace import HashSpace, Partition
from repro.core.ids import VnodeRef
from repro.core.storage import DHTStorage
from repro.runtime.codec import read_frame, write_frame
from repro.runtime.rpc import RpcClient


class NodeTopologyView:
    """A node's copy of the cluster ownership table, pushed by the coordinator.

    Satisfies the topology protocol the placement plane consumes (``version``
    plus ``iter_ownership``), so a node rebuilds its router and replica
    placement with the exact same deterministic code path as the
    single-process engine — placement never travels over the wire.
    """

    def __init__(self) -> None:
        self.version = 0
        self._entries: List[Tuple[Partition, VnodeRef]] = []

    def update(self, version: int, entries: List[Tuple[Partition, VnodeRef]]) -> None:
        self.version = version
        self._entries = list(entries)

    def iter_ownership(self) -> Iterator[Tuple[Partition, VnodeRef]]:
        return iter(self._entries)


class SnodeNode:
    """State and request dispatcher of one runtime snode."""

    def __init__(
        self,
        snode_id: int,
        *,
        bh: int,
        replication_factor: int = 1,
        data_dir: Optional[str] = None,
    ):
        self.snode_id = snode_id
        self.hash_space = HashSpace(bh)
        durability = DurabilityConfig(data_dir=data_dir) if data_dir else None
        self.storage = DHTStorage(self.hash_space, durability=durability)
        self.view = NodeTopologyView()
        self.placement = PlacementService(
            self.hash_space, self.view, replication_factor, replication_factor - 1
        )
        self.hosted: Set[VnodeRef] = set()
        #: Requests dispatched since boot, by message class name.
        self.requests_served: Dict[str, int] = {}
        #: Outbound connections to peer nodes (peer-to-peer range pushes),
        #: keyed by address.  Lazily opened, closed with the node.
        self._peers: Dict[Any, RpcClient] = {}
        self._peer_request_id = 0
        #: Test-only fault points of the peer-transfer handshake: a named
        #: awaitable called at that point of :meth:`_peer_transfer` (e.g.
        #: ``"after_adopt"`` runs between the target's adoption ack and the
        #: local drop — the window a kill -9 must not lose rows in).
        self.transfer_hooks: Dict[str, Any] = {}

    # -- dispatch --------------------------------------------------------------

    async def dispatch(self, message: Message) -> Ack:
        """Handle one request message; never raises — errors ride the Ack."""
        name = type(message).__name__
        self.requests_served[name] = self.requests_served.get(name, 0) + 1
        try:
            if isinstance(message, PeerTransferRequest):
                payload = await self._peer_transfer(message)
            else:
                payload = self._handle(message)
        except KeyError as exc:
            key = exc.args[0] if exc.args else None
            return Ack(src=self.snode_id, dst=message.src, payload=key, error="KeyError")
        except Exception as exc:
            return Ack(
                src=self.snode_id,
                dst=message.src,
                error=f"{type(exc).__name__}: {exc}",
            )
        return Ack(src=self.snode_id, dst=message.src, payload=payload)

    def _handle(self, msg: Message) -> Any:
        storage = self.storage
        if isinstance(msg, PingRequest):
            return None
        if isinstance(msg, PutRequest):
            ref = VnodeRef.parse(msg.ref)
            if msg.tier == "replica":
                storage.put_replica(ref, msg.key, msg.index, msg.value)
            else:
                storage.put(ref, msg.key, msg.index, msg.value)
            return None
        if isinstance(msg, GetRequest):
            ref = VnodeRef.parse(msg.ref)
            if msg.tier == "replica":
                return storage.get_replica(ref, msg.key)
            return storage.get(ref, msg.key)
        if isinstance(msg, DeleteRequest):
            ref = VnodeRef.parse(msg.ref)
            if msg.tier == "replica":
                return storage.delete_replica(ref, msg.key)
            return storage.delete(ref, msg.key)
        if isinstance(msg, BulkLoadChunk):
            ref = VnodeRef.parse(msg.ref)
            if msg.tier == "replica":
                return storage.put_replica_batch(ref, msg.keys, msg.indexes, msg.values)
            return storage.put_batch(ref, msg.keys, msg.indexes, msg.values)
        if isinstance(msg, LookupRequest):
            index = self.hash_space.hash_key(msg.key)
            partition, ref = self.placement.locate(index)
            return (
                partition.level,
                partition.index,
                ref.canonical_name,
                ref.snode.value,
            )
        if isinstance(msg, RangeExtract):
            store = self._tier_store(msg.ref, msg.tier)
            starts, lasts = storage.range_arrays(msg.ranges)
            if msg.pop:
                return store.pop_buckets(starts, lasts)
            return store.copy_buckets(starts, lasts)
        if isinstance(msg, RangeAdopt):
            store = self._tier_store(msg.ref, msg.tier)
            for pairs, segments in msg.parts:
                store.adopt_parts(pairs, segments)
            return None
        if isinstance(msg, RangeDrop):
            store = self._tier_store(msg.ref, msg.tier)
            starts, lasts = storage.range_arrays(msg.ranges)
            parts = store.pop_buckets(starts, lasts)
            return sum(
                len(pairs) + sum(len(seg[0]) for seg in segments)
                for pairs, segments in parts
            )
        if isinstance(msg, RangeCount):
            store = self._tier_store(msg.ref, msg.tier)
            starts, lasts = storage.range_arrays(msg.ranges)
            return [int(n) for n in store.count_buckets(starts, lasts)]
        if isinstance(msg, RangeRetain):
            store = self._tier_store(msg.ref, msg.tier)
            starts, lasts = storage.range_arrays(msg.ranges)
            return store.drop_outside(starts, lasts)
        if isinstance(msg, VnodeCreate):
            ref = VnodeRef.parse(msg.ref)
            storage.register_vnode(ref, fresh=msg.fresh)
            self.hosted.add(ref)
            return None
        if isinstance(msg, VnodeDrop):
            ref = VnodeRef.parse(msg.ref)
            storage.unregister_vnode(ref)
            self.hosted.discard(ref)
            return None
        if isinstance(msg, WalReplay):
            state = storage.replay_vnode(VnodeRef.parse(msg.ref))
            return state.rows
        if isinstance(msg, RestartNotice):
            rows = 0
            if storage.durable is not None:
                for ref in storage.durable.pending_refs():
                    rows += storage.replay_vnode(ref).rows
            return rows
        if isinstance(msg, TopologySnapshot):
            entries = [
                (Partition(level, index), VnodeRef.parse(name))
                for level, index, name in msg.entries
            ]
            self.view.update(msg.version, entries)
            return None
        if isinstance(msg, NodeStatsRequest):
            return self.stats(partitions=msg.partitions)
        raise TypeError(f"snode {self.snode_id} cannot serve {type(msg).__name__}")

    def _tier_store(self, name: str, tier: str):
        ref = VnodeRef.parse(name)
        if tier == "replica":
            return self.storage.replica_store(ref)
        return self.storage.primary_store(ref)

    # -- peer-to-peer transfers ------------------------------------------------

    def _peer(self, address: Any) -> RpcClient:
        """The pooled outbound connection to the peer at ``address``."""
        key = tuple(address) if isinstance(address, (list, tuple)) else address
        client = self._peers.get(key)
        if client is None:
            client = RpcClient(
                tuple(address) if isinstance(address, (list, tuple)) else address
            )
            self._peers[key] = client
        return client

    async def _await_hook(self, point: str) -> None:
        hook = self.transfer_hooks.get(point)
        if hook is not None:
            await hook()

    async def _peer_transfer(self, msg: PeerTransferRequest) -> Dict[str, Any]:
        """Push owned rows directly to a peer; drop locally only after its ack.

        The data half of a coordinator-planned range move: rows are *copied*
        out, adopted on the target over this node's own outbound connection,
        and popped from the local store only once the target has
        acknowledged — so a source killed mid-transfer leaves either both
        copies (idempotently reconciled by the coordinator) or the rows
        safely adopted, never neither.  Returns the coordinator-ack payload:
        the row count and the bytes that flowed on the peer link.
        """
        store = self._tier_store(msg.ref, msg.tier)
        starts, lasts = self.storage.range_arrays(msg.ranges)
        parts = store.copy_buckets(starts, lasts)
        rows = sum(
            len(pairs) + sum(len(seg[0]) for seg in segments)
            for pairs, segments in parts
        )
        peer = self._peer(msg.target_address)
        sent_before = peer.bytes_sent + peer.bytes_received
        await self._await_hook("before_adopt")
        await peer.call(
            RangeAdopt(
                src=self.snode_id,
                dst=-1,
                ref=msg.target_ref,
                tier=msg.tier,
                parts=parts,
            )
        )
        await self._await_hook("after_adopt")
        if msg.pop:
            store.pop_buckets(starts, lasts)
        peer_bytes = peer.bytes_sent + peer.bytes_received - sent_before
        return {"rows": rows, "peer_bytes": peer_bytes}

    async def close_peers(self) -> None:
        """Close every pooled outbound peer connection."""
        peers, self._peers = list(self._peers.values()), {}
        for client in peers:
            await client.close()

    # -- introspection ---------------------------------------------------------

    def stats(self, partitions: bool = False) -> Dict[str, Any]:
        """Per-node row counts and durability counters (the NodeStats reply).

        With ``partitions=True`` the reply adds ``"partitions"`` — per
        hosted vnode, the primary row count of every owned partition keyed
        by ``(level, index)`` (one merge-free ``count_buckets`` pass per
        vnode, the runtime's load-measurement feed) — and the node's peer
        traffic counters.
        """
        storage = self.storage
        out: Dict[str, Any] = {
            "snode": self.snode_id,
            "primary": storage.fast_primary_count(),
            "replica": storage.fast_replica_count(),
            "vnodes": {
                ref.canonical_name: {
                    "primary": storage.fast_primary_count(ref),
                    "replica": storage.fast_replica_count(ref),
                }
                for ref in sorted(self.hosted)
            },
            "requests": dict(self.requests_served),
        }
        if partitions:
            out["partitions"] = self._partition_counts()
            out["peer_bytes_sent"] = sum(c.bytes_sent for c in self._peers.values())
            out["peer_bytes_received"] = sum(
                c.bytes_received for c in self._peers.values()
            )
        if storage.durable is not None:
            out["durability"] = storage.durability.as_dict()
        return out

    def _partition_counts(self) -> Dict[str, Dict[Tuple[int, int], int]]:
        """Measured primary rows of every owned partition, per hosted vnode."""
        bh = self.hash_space.bh
        owned: Dict[VnodeRef, List[Partition]] = {}
        for partition, ref in self.view.iter_ownership():
            if ref in self.hosted:
                owned.setdefault(ref, []).append(partition)
        out: Dict[str, Dict[Tuple[int, int], int]] = {}
        for ref in sorted(owned):
            ordered = sorted(owned[ref], key=Partition.ring_sort_key)
            ranges = [(p.start(bh), p.end(bh) - 1) for p in ordered]
            rows = self.storage.primary_range_counts(ref, ranges)
            out[ref.canonical_name] = {
                (p.level, p.index): int(r) for p, r in zip(ordered, rows.tolist())
            }
        return out

    # -- fault surface ---------------------------------------------------------

    def lose_memory(self) -> int:
        """Drop every in-memory row (both tiers), keep disk — a kill -9."""
        return sum(self.storage.lose_vnode_memory(ref) for ref in sorted(self.hosted))


class SnodeServer:
    """Asyncio server around one :class:`SnodeNode`."""

    def __init__(
        self,
        node: SnodeNode,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
    ):
        self.node = node
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.paused = False
        self.killed = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: Set[asyncio.StreamWriter] = set()

    @property
    def address(self):
        """The connectable address (resolved after :meth:`start`)."""
        if self.unix_path is not None:
            return self.unix_path
        return (self.host, self.port)

    async def start(self) -> None:
        if self.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.unix_path
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drop open connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()

    async def kill(self) -> None:
        """Simulated kill -9: connections dropped mid-flight, no goodbyes."""
        self.killed = True
        await self.stop()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while not self.killed:
                request_id, _, message, _nbytes = await read_frame(reader)
                if self.paused or self.killed:
                    # A hung process reads from its socket buffer but never
                    # replies; the client's timeout machinery takes it from
                    # here.
                    continue
                response = await self.node.dispatch(message)
                await write_frame(writer, request_id, response, response=True)
        except (asyncio.IncompleteReadError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()


__all__ = ["NodeTopologyView", "SnodeNode", "SnodeServer"]
