"""Length-prefixed framing of protocol messages over asyncio streams.

A frame is::

    !I  length of the rest of the frame (request id + flags + body)
    !Q  request id (matches a response to its request on one connection)
    !B  flags (bit 0: this frame is a response)
    ..  message body — 2-byte type code + pickled fields
        (:meth:`repro.cluster.messages.Message.encode`)

The frame layer is deliberately dumb: request/response correlation and
error signalling live in the message layer (:class:`~repro.cluster.messages.Ack`
carries ``error``), the frame only delimits bytes on the stream.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Tuple

from repro.cluster.messages import Message, WireError, decode

_FRAME_HEADER = struct.Struct("!QB")
_FRAME_LENGTH = struct.Struct("!I")

#: Upper bound on one frame's size; a peer announcing more is protocol
#: garbage (or an attack) and the connection is dropped.  Generous enough
#: for the largest columnar bulk-load chunk the harness ships.
MAX_FRAME_BYTES = 256 * 1024 * 1024

FLAG_RESPONSE = 0x01


def encode_frame(request_id: int, message: Message, *, response: bool = False) -> bytes:
    """One wire frame for ``message`` under the given request id."""
    body = message.encode()
    flags = FLAG_RESPONSE if response else 0
    return (
        _FRAME_LENGTH.pack(_FRAME_HEADER.size + len(body))
        + _FRAME_HEADER.pack(request_id, flags)
        + body
    )


async def read_frame(reader: asyncio.StreamReader) -> Tuple[int, bool, Message, int]:
    """Read one frame; returns ``(request_id, is_response, message, n_bytes)``.

    ``n_bytes`` is the full on-wire size of the frame (length prefix
    included) — the receive side of the per-connection byte accounting.
    Raises :class:`asyncio.IncompleteReadError` on clean EOF and
    :class:`~repro.cluster.messages.WireError` on garbage.
    """
    (length,) = _FRAME_LENGTH.unpack(await reader.readexactly(_FRAME_LENGTH.size))
    if length < _FRAME_HEADER.size or length > MAX_FRAME_BYTES:
        raise WireError(f"invalid frame length {length}")
    payload = await reader.readexactly(length)
    request_id, flags = _FRAME_HEADER.unpack_from(payload)
    message = decode(payload[_FRAME_HEADER.size :])
    n_bytes = _FRAME_LENGTH.size + length
    return request_id, bool(flags & FLAG_RESPONSE), message, n_bytes


async def write_frame(
    writer: asyncio.StreamWriter,
    request_id: int,
    message: Message,
    *,
    response: bool = False,
) -> int:
    """Write one frame and drain the transport's buffer; returns its size."""
    frame = encode_frame(request_id, message, response=response)
    writer.write(frame)
    await writer.drain()
    return len(frame)


__all__ = [
    "FLAG_RESPONSE",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "read_frame",
    "write_frame",
]
