"""Cluster harness: boot K served snodes, replay churn, oracle against the sim.

The harness is the runtime's coordinator.  It keeps a **metadata twin** — a
regular single-process :class:`~repro.core.base.BaseDHT` holding *zero
items* — as the control-plane authority: every topology event of a churn
trace is applied to the twin first (same code path as the simulation,
:func:`repro.workloads.churn.apply_topology_event`), and the resulting
ownership/placement *diff* is translated into RPCs that move real rows
between the served nodes:

- primary ownership changes become ``RangeExtract(pop=True)`` →
  ``RangeAdopt`` pairs between the old and new owners;
- a crash destroys the victim's state (fault injector) and the lost ranges
  are rebuilt from the replicas the *pre-event* placement says survived;
- a restart kills and reboots the node (memory lost, disk kept) and the
  primaries come back via WAL replay — or, without durability, from
  surviving replicas;
- replica placement changes become drop+copy refills sourced from the
  post-move primaries, plus retention passes that clear rows a vnode no
  longer replicates.

After every topology event the harness checks **conservation** (the summed
primary rows across nodes must equal the rows loaded, crash-with-no-replica
being the only sanctioned loss) and, when replication is on, a
``verify_replication`` analogue over RPC (per-partition primary and replica
range counts must agree).

Finally the :class:`~repro.cluster.protocol.LifecycleProtocolSimulator`
doubles as a **differential oracle**: the same trace is profiled and priced
by the cost model, and the report pairs each applied topology event's
simulated duration with its measured wall-clock.

Load-aware ``rebalance`` events run over the runtime itself: the harness
aggregates per-partition primary row counts from concurrent ``NodeStats``
replies into the exact snapshot structure the in-process planner consumes
(:class:`RuntimeLoadProvider` → :func:`repro.core.rebalance.snapshot_from_counts`),
plans each round with the same pure :func:`~repro.core.rebalance.plan_load_round`,
and executes every transfer by ordering the *source* snode to push the
extracted rows directly to the target (``PeerTransferRequest``) — the
coordinator link carries only the order and its metadata ack, never the
row payload.  The twin mirrors each executed action through the public
:meth:`~repro.core.base.BaseDHT.execute_load_round`, and a replica
maintenance pass restores placement after the rounds.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cluster.messages import (
    NodeStatsRequest,
    PeerTransferRequest,
    PingRequest,
    RangeAdopt,
    RangeCount,
    RangeDrop,
    RangeExtract,
    RangeRetain,
    TopologySnapshot,
    VnodeCreate,
    VnodeDrop,
    WalReplay,
)
from repro.cluster.protocol import (
    LifecycleProtocolSimulator,
    ProtocolCosts,
    lifecycle_event_cost,
)
from repro.core.errors import ReproError
from repro.core.ids import VnodeRef
from repro.core.rebalance import (
    LoadRebalancePlan,
    LoadRebalanceReport,
    LoadSnapshot,
    plan_load_round,
    snapshot_from_counts,
)
from repro.runtime.client import COORDINATOR_ID, ClusterClient
from repro.runtime.faults import FaultInjector, NodeHandle
from repro.runtime.node import SnodeNode, SnodeServer
from repro.runtime.rpc import RpcClient, RpcError
from repro.workloads.churn import (
    ChurnEvent,
    ChurnSpec,
    apply_topology_event,
    make_churn_trace,
)
from repro.workloads.driver import build_cluster
from repro.workloads.keys import id_keys, uniform_keys, zipf_id_keys

#: ``(start, end, ref)`` half-open ownership interval.
_Interval = Tuple[int, int, VnodeRef]


class HarnessError(ReproError):
    """The served cluster violated conservation or replication invariants."""


@dataclass
class _TwinState:
    """Range-level snapshot of the twin's ownership and placement."""

    version: int
    ownership: List[_Interval]
    #: ``(start, end, primary_ref, replica_refs)`` per partition.
    partitions: List[Tuple[int, int, VnodeRef, Tuple[VnodeRef, ...]]]
    hosted: Dict[int, Set[VnodeRef]]


@dataclass
class EventRecord:
    """One replayed event: what happened and how long it took."""

    kind: str
    describe: str
    applied: bool
    measured_s: float
    note: str = ""
    simulated_s: Optional[float] = None


@dataclass
class HarnessReport:
    """Outcome of one churn replay over the served cluster."""

    name: str
    processes: bool
    n_events: int
    applied: int
    skipped: int
    loaded: int
    lookups: int
    items_lost: int
    conservation_checks: int
    replication_checks: int
    wall_s: float
    events: List[EventRecord] = field(default_factory=list)
    rpc_latencies_s: List[float] = field(default_factory=list)
    faults: List[tuple] = field(default_factory=list)
    #: One record per executed runtime rebalance event: the full
    #: :class:`~repro.core.rebalance.LoadRebalanceReport` dict plus the
    #: coordinator-vs-peer byte breakdown of its transfers.
    rebalances: List[Dict[str, Any]] = field(default_factory=list)
    #: Total on-wire bytes of the coordinator's connections over the run.
    coordinator_bytes: int = 0

    def events_per_second(self) -> float:
        return self.n_events / self.wall_s if self.wall_s > 0 else 0.0

    def latency_percentiles(self) -> Dict[str, float]:
        if not self.rpc_latencies_s:
            return {"p50_us": 0.0, "p99_us": 0.0}
        column = np.asarray(self.rpc_latencies_s)
        return {
            "p50_us": float(np.percentile(column, 50) * 1e6),
            "p99_us": float(np.percentile(column, 99) * 1e6),
        }

    def oracle_by_kind(self) -> Dict[str, Dict[str, float]]:
        """Simulated vs measured seconds per topology event kind."""
        out: Dict[str, Dict[str, float]] = {}
        for record in self.events:
            if record.simulated_s is None:
                continue
            bucket = out.setdefault(
                record.kind, {"n": 0, "simulated_s": 0.0, "measured_s": 0.0}
            )
            bucket["n"] += 1
            bucket["simulated_s"] += record.simulated_s
            bucket["measured_s"] += record.measured_s
        return out

    def as_dict(self, include_events: bool = False) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "processes": self.processes,
            "n_events": self.n_events,
            "applied": self.applied,
            "skipped": self.skipped,
            "loaded": self.loaded,
            "lookups": self.lookups,
            "items_lost": self.items_lost,
            "conservation_checks": self.conservation_checks,
            "replication_checks": self.replication_checks,
            "wall_s": self.wall_s,
            "events_per_second": self.events_per_second(),
            "rpc_calls": len(self.rpc_latencies_s),
            "rpc_latency": self.latency_percentiles(),
            "oracle_by_kind": self.oracle_by_kind(),
            "faults": [list(entry) for entry in self.faults],
            "coordinator_bytes": self.coordinator_bytes,
            "rebalances": list(self.rebalances),
        }
        if include_events:
            out["events"] = [
                {
                    "kind": record.kind,
                    "describe": record.describe,
                    "applied": record.applied,
                    "measured_s": record.measured_s,
                    "simulated_s": record.simulated_s,
                    "note": record.note,
                }
                for record in self.events
            ]
        return out


def _merge_ranges(ranges: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Coalesce sorted half-open ranges into their disjoint union."""
    merged: List[Tuple[int, int]] = []
    for start, end in sorted(ranges):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _covers(merged: List[Tuple[int, int]], start: int, end: int) -> bool:
    """True when the merged ranges contain all of ``[start, end)``."""
    for lo, hi in merged:
        if lo <= start and end <= hi:
            return True
    return False


def _inclusive(ranges: Sequence[Tuple[int, int]]) -> Tuple[Tuple[int, int], ...]:
    """Half-open ``(start, end)`` ranges to the wire's ``(start, last)``."""
    return tuple((start, end - 1) for start, end in ranges if end > start)


class RuntimeLoadProvider:
    """Load measurement over the served cluster (the runtime LoadProvider).

    Aggregates one concurrent ``NodeStats(partitions=True)`` round into the
    exact :class:`~repro.core.rebalance.LoadSnapshot` structure the planner
    consumes — topology (scopes, members, partition order) from the
    coordinator's metadata twin, per-partition primary row counts from the
    served nodes.  Identical measured loads therefore yield
    decision-identical plans to the in-process
    :func:`~repro.core.rebalance.measure_loads` provider; the differential
    tests pin this.  ``measure`` is a coroutine (measurement is RPC), which
    is why the harness drives its own planning rounds instead of the sync
    :func:`~repro.core.rebalance.drive_load_rebalance`.
    """

    def __init__(self, harness: "ClusterHarness"):
        self.harness = harness
        #: Peer-link traffic totals reported by the last measurement round.
        self.peer_bytes_sent = 0
        self.peer_bytes_received = 0

    async def measure(self) -> LoadSnapshot:
        stats = await self.harness.gather_stats(partitions=True)
        row_counts: Dict[str, Dict[Tuple[int, int], int]] = {}
        self.peer_bytes_sent = self.peer_bytes_received = 0
        for payload in stats.values():
            row_counts.update(payload.get("partitions") or {})
            self.peer_bytes_sent += int(payload.get("peer_bytes_sent", 0))
            self.peer_bytes_received += int(payload.get("peer_bytes_received", 0))
        return snapshot_from_counts(self.harness.twin, row_counts)


class ClusterHarness:
    """Boot, drive, and verify a served cluster against its metadata twin."""

    def __init__(
        self,
        spec: ChurnSpec,
        *,
        trace: Optional[Sequence[ChurnEvent]] = None,
        processes: bool = False,
        base_dir: Optional[str] = None,
        rpc_timeout: float = 10.0,
        costs: Optional[ProtocolCosts] = None,
    ):
        if processes and base_dir is None:
            raise ValueError("process mode needs base_dir for unix sockets")
        self.spec = spec
        self.trace: List[ChurnEvent] = (
            list(trace) if trace is not None else make_churn_trace(spec)
        )
        self.processes = processes
        self.base_dir = base_dir
        self.rpc_timeout = rpc_timeout
        self.costs = costs or ProtocolCosts()
        # Per-node data directories: explicit via the spec, or defaulted on
        # in process mode (a rebooted process can only recover from disk).
        self.data_root = spec.data_dir or (base_dir if processes else None)
        self.durable = self.data_root is not None

        self.twin = build_cluster(
            spec.approach,
            spec.n_snodes,
            spec.vnodes_per_snode,
            pmin=spec.pmin,
            vmin=spec.vmin,
            replication_factor=spec.replication_factor,
            seed=spec.seed,
        )
        self.bh = self.twin.hash_space.bh
        self.handles: Dict[int, NodeHandle] = {}
        self.client = ClusterClient(
            bh=self.bh, replication_factor=spec.replication_factor
        )
        self.faults = FaultInjector(spawner=self._spawn_process)
        self.expected_total = 0
        self.items_lost = 0
        self._started = False
        #: One dict per executed rebalance event (report + byte breakdown).
        self.rebalance_records: List[Dict[str, Any]] = []
        #: Set when a failed mid-transfer source could not be rebuilt
        #: (no replica, no disk) — sanctions the loss for that event only.
        self._rebalance_loss = False
        #: Coordinator-link bytes of connections already closed (retired or
        #: crashed nodes), so totals never go backwards.
        self._retired_coordinator_bytes = 0

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Boot one served node per twin snode and create their vnodes."""
        state = self._snapshot()
        for snode_id in sorted(state.hosted):
            await self._boot_node(snode_id)
        for snode_id, refs in state.hosted.items():
            for ref in sorted(refs):
                await self._call(
                    snode_id, VnodeCreate, ref=ref.canonical_name, fresh=True
                )
        await self._push_topology()
        self._started = True

    async def close(self) -> None:
        for handle in self.handles.values():
            await handle.close()
        self.handles.clear()

    async def __aenter__(self) -> "ClusterHarness":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- node plumbing ---------------------------------------------------------

    def _node_dir(self, snode_id: int) -> Optional[str]:
        if self.data_root is None:
            return None
        return os.path.join(self.data_root, f"node-{snode_id}")

    async def _boot_node(self, snode_id: int) -> NodeHandle:
        handle = NodeHandle(
            snode_id=snode_id,
            bh=self.bh,
            replication_factor=self.spec.replication_factor,
            data_dir=self._node_dir(snode_id),
            process_mode=self.processes,
        )
        if self.processes:
            await self._spawn_process(handle)
        else:
            node = SnodeNode(
                snode_id,
                bh=self.bh,
                replication_factor=self.spec.replication_factor,
                data_dir=handle.data_dir,
            )
            server = SnodeServer(node)
            await server.start()
            handle.node = node
            handle.server = server
            handle.address = server.address
            handle.rpc = RpcClient(server.address, timeout=self.rpc_timeout)
        self.handles[snode_id] = handle
        self.client.connect(snode_id, handle.rpc)
        return handle

    async def _spawn_process(self, handle: NodeHandle) -> None:
        """Spawn (or re-spawn) one snode as a real OS process on a unix socket."""
        assert self.base_dir is not None
        unix_path = os.path.join(self.base_dir, f"snode-{handle.snode_id}.sock")
        if os.path.exists(unix_path):
            os.unlink(unix_path)
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--snode",
            str(handle.snode_id),
            "--bh",
            str(self.bh),
            "--replication-factor",
            str(self.spec.replication_factor),
            "--unix",
            unix_path,
        ]
        if handle.data_dir is not None:
            argv += ["--data-dir", handle.data_dir]
        handle.process = subprocess.Popen(argv)
        handle.address = unix_path
        handle.rpc = RpcClient(unix_path, timeout=self.rpc_timeout)
        self.client.connect(handle.snode_id, handle.rpc)
        await self._wait_ready(handle)

    async def _wait_ready(self, handle: NodeHandle, deadline_s: float = 20.0) -> None:
        started = time.monotonic()
        while True:
            try:
                probe = RpcClient(handle.address, timeout=1.0, retries=0)
                await probe.call(
                    PingRequest(src=COORDINATOR_ID, dst=handle.snode_id)
                )
                await probe.close()
                return
            except Exception:
                if time.monotonic() - started > deadline_s:
                    raise HarnessError(
                        f"snode {handle.snode_id} never became ready"
                    ) from None
                await asyncio.sleep(0.05)

    async def _call(
        self, snode_id: int, message_cls, *, timeout: Optional[float] = None, **fields_
    ):
        handle = self.handles[snode_id]
        assert handle.rpc is not None
        message = message_cls(src=COORDINATOR_ID, dst=snode_id, **fields_)
        return await handle.rpc.call(message, timeout=timeout)

    async def _call_ref(self, ref: VnodeRef, message_cls, **fields_):
        return await self._call(
            ref.snode.value, message_cls, ref=ref.canonical_name, **fields_
        )

    # -- twin snapshots --------------------------------------------------------

    def _snapshot(self) -> _TwinState:
        bh = self.bh
        replicated = self.spec.replication_factor > 1
        ownership: List[_Interval] = []
        partitions: List[Tuple[int, int, VnodeRef, Tuple[VnodeRef, ...]]] = []
        for partition, ref in self.twin.topology.iter_ownership():
            start, end = partition.start(bh), partition.end(bh)
            ownership.append((start, end, ref))
            replicas = (
                self.twin.placement.replicas_of(partition) if replicated else ()
            )
            partitions.append((start, end, ref, replicas))
        ownership.sort(key=lambda interval: interval[0])
        partitions.sort(key=lambda entry: entry[0])
        hosted = {
            snode_id.value: set(snode.vnodes.keys())
            for snode_id, snode in self.twin.topology.snodes.items()
        }
        return _TwinState(
            version=self.twin.topology.version,
            ownership=ownership,
            partitions=partitions,
            hosted=hosted,
        )

    async def _push_topology(self) -> None:
        state = self._snapshot()
        entries = tuple(
            (partition.level, partition.index, ref.canonical_name)
            for partition, ref in self.twin.topology.iter_ownership()
        )
        view_entries = list(self.twin.topology.iter_ownership())
        self.client.update_topology(state.version, view_entries)
        for snode_id in sorted(state.hosted):
            await self._call(
                snode_id, TopologySnapshot, version=state.version, entries=entries
            )

    @staticmethod
    def _replica_cover(
        partitions: List[Tuple[int, int, VnodeRef, Tuple[VnodeRef, ...]]]
    ) -> Dict[VnodeRef, List[Tuple[int, int]]]:
        cover: Dict[VnodeRef, List[Tuple[int, int]]] = {}
        for start, end, _primary, replicas in partitions:
            for ref in replicas:
                cover.setdefault(ref, []).append((start, end))
        return {ref: _merge_ranges(ranges) for ref, ranges in cover.items()}

    @staticmethod
    def _diff_moves(
        before: List[_Interval], after: List[_Interval]
    ) -> List[Tuple[int, int, VnodeRef, VnodeRef]]:
        """Segments whose owner changed, by merge-scanning both interval lists."""
        moves: List[Tuple[int, int, VnodeRef, VnodeRef]] = []
        i = j = 0
        cursor = before[0][0] if before else 0
        space_end = max(
            before[-1][1] if before else 0, after[-1][1] if after else 0
        )
        while cursor < space_end and i < len(before) and j < len(after):
            while i < len(before) and before[i][1] <= cursor:
                i += 1
            while j < len(after) and after[j][1] <= cursor:
                j += 1
            if i >= len(before) or j >= len(after):
                break
            segment_end = min(before[i][1], after[j][1])
            if before[i][2] != after[j][2]:
                moves.append((cursor, segment_end, before[i][2], after[j][2]))
            cursor = segment_end
        return moves

    # -- data movement ---------------------------------------------------------

    async def _move_primary(
        self, src: VnodeRef, dst: VnodeRef, ranges: List[Tuple[int, int]]
    ) -> None:
        response = await self._call_ref(
            src, RangeExtract, ranges=_inclusive(ranges), pop=True
        )
        await self._call_ref(dst, RangeAdopt, parts=response.payload)

    async def _rebuild_from_replica(
        self,
        start: int,
        end: int,
        dst: VnodeRef,
        before: _TwinState,
        dead_refs: Set[VnodeRef],
        cover: Dict[VnodeRef, List[Tuple[int, int]]],
    ) -> bool:
        """Rebuild ``[start, end)`` of ``dst``'s primary from a surviving replica.

        Returns False when no surviving replica covers the range (the rows
        are unrecoverable — only possible without replication).
        """
        for seg_start, seg_end, _primary, replicas in before.partitions:
            lo, hi = max(start, seg_start), min(end, seg_end)
            if lo >= hi:
                continue
            source = next(
                (
                    ref
                    for ref in replicas
                    if ref not in dead_refs
                    and _covers(cover.get(ref, []), lo, hi)
                ),
                None,
            )
            if source is None:
                return False
            response = await self._call_ref(
                source,
                RangeExtract,
                tier="replica",
                ranges=_inclusive([(lo, hi)]),
                pop=False,
            )
            await self._call_ref(dst, RangeAdopt, parts=response.payload)
        return True

    def _coordinator_bytes(self) -> int:
        """Total on-wire bytes of the coordinator's connections, ever."""
        live = sum(
            handle.rpc.bytes_sent + handle.rpc.bytes_received
            for handle in self.handles.values()
            if handle.rpc is not None
        )
        return self._retired_coordinator_bytes + live

    def _retire_rpc_bytes(self, handle: Optional[NodeHandle]) -> None:
        """Bank a connection's byte counters before it is dropped/replaced."""
        if handle is not None and handle.rpc is not None:
            self._retired_coordinator_bytes += (
                handle.rpc.bytes_sent + handle.rpc.bytes_received
            )

    async def _apply_topology_event(self, event: ChurnEvent) -> Tuple[bool, str]:
        """Mirror one twin topology change onto the served cluster."""
        if event.kind == "rebalance":
            return await self._runtime_rebalance()

        before = self._snapshot()
        before_cover = self._replica_cover(before.partitions)

        try:
            outcome = apply_topology_event(self.twin, event)
        except ReproError as exc:
            return False, f"skipped: {exc}"

        crash_sid = event.snode if event.kind == "snode_crash" else None
        restart_sid = event.snode if event.kind == "snode_restart" else None
        after = self._snapshot()
        crashed_refs = set(before.hosted.get(crash_sid, set())) if crash_sid is not None else set()
        restarted_refs = (
            set(before.hosted.get(restart_sid, set())) if restart_sid is not None else set()
        )

        # 1. Inject the real fault.
        if crash_sid is not None and crash_sid in self.handles:
            handle = self.handles.pop(crash_sid)
            self._retire_rpc_bytes(handle)
            await self.faults.crash(handle)
            self.client.disconnect(crash_sid)
        if restart_sid is not None and restart_sid in self.handles:
            handle = self.handles[restart_sid]
            await self.faults.kill(handle)
            self._retire_rpc_bytes(handle)
            await self.faults.reboot(handle)
            self.client.connect(restart_sid, handle.rpc)
            if not handle.in_process:
                await self._wait_ready(handle)
                for ref in sorted(restarted_refs):
                    await self._call(
                        restart_sid, VnodeCreate, ref=ref.canonical_name, fresh=False
                    )

        # 2. Boot joined snodes, create new vnodes.
        for snode_id in sorted(set(after.hosted) - set(before.hosted)):
            await self._boot_node(snode_id)
        for snode_id, refs in after.hosted.items():
            for ref in sorted(refs - before.hosted.get(snode_id, set())):
                await self._call(
                    snode_id, VnodeCreate, ref=ref.canonical_name, fresh=True
                )

        # 3. Restart recovery: WAL replay (durable) or replica rebuild.
        note = outcome.note
        if restarted_refs:
            if self.durable:
                for ref in sorted(restarted_refs):
                    await self._call_ref(ref, WalReplay)
            else:
                for start, end, owner in after.ownership:
                    if owner not in restarted_refs:
                        continue
                    recovered = await self._rebuild_from_replica(
                        start, end, owner, before, restarted_refs, before_cover
                    )
                    if not recovered:
                        note = f"{note}; restart lost [{start}, {end})".strip("; ")

        # 4. Primary ownership moves (crash-owned segments come from replicas).
        grouped: Dict[Tuple[VnodeRef, VnodeRef], List[Tuple[int, int]]] = {}
        unrecovered = 0
        for start, end, src, dst in self._diff_moves(before.ownership, after.ownership):
            if src in crashed_refs:
                recovered = await self._rebuild_from_replica(
                    start, end, dst, before, crashed_refs, before_cover
                )
                if not recovered:
                    unrecovered += 1
            else:
                grouped.setdefault((src, dst), []).append((start, end))
        for (src, dst), ranges in grouped.items():
            await self._move_primary(src, dst, ranges)
        if unrecovered:
            note = f"{note}; {unrecovered} ranges unrecoverable".strip("; ")

        # 5. New routing state everywhere.
        await self._push_topology()

        # 6. Replica maintenance: retention then drop+refill.
        await self._replica_maintenance(after, before_cover, restarted_refs)

        # 7. Drop drained vnodes; retire departed nodes.
        for snode_id, refs in before.hosted.items():
            if snode_id == crash_sid:
                continue
            for ref in sorted(refs - after.hosted.get(snode_id, set())):
                await self._call(snode_id, VnodeDrop, ref=ref.canonical_name)
        for snode_id in sorted(set(before.hosted) - set(after.hosted)):
            if snode_id == crash_sid:
                continue
            handle = self.handles.pop(snode_id, None)
            if handle is not None:
                self._retire_rpc_bytes(handle)
                await handle.close()
            self.client.disconnect(snode_id)

        return True, note

    async def _replica_maintenance(
        self,
        after: _TwinState,
        before_cover: Dict[VnodeRef, List[Tuple[int, int]]],
        restarted_refs: Set[VnodeRef],
    ) -> None:
        """Retention then drop+refill until replicas match the twin's placement.

        ``before_cover`` is the replica cover *before* the topology change:
        a replica range it already covered is intact (its rows are keyed by
        hash and primaries never mutate rows during a move), everything
        else — new placement, or a replica hosted by a restarted node whose
        memory is gone — is dropped and refilled from the current primary.
        """
        if self.spec.replication_factor <= 1:
            return
        after_cover = self._replica_cover(after.partitions)
        for snode_id, refs in after.hosted.items():
            for ref in sorted(refs):
                await self._call_ref(
                    ref,
                    RangeRetain,
                    tier="replica",
                    ranges=_inclusive(after_cover.get(ref, [])),
                )
        for start, end, primary, replicas in after.partitions:
            for ref in replicas:
                intact = (
                    ref not in restarted_refs
                    and _covers(before_cover.get(ref, []), start, end)
                )
                if intact:
                    continue
                await self._call_ref(
                    ref,
                    RangeDrop,
                    tier="replica",
                    ranges=_inclusive([(start, end)]),
                )
                response = await self._call_ref(
                    primary,
                    RangeExtract,
                    ranges=_inclusive([(start, end)]),
                    pop=False,
                )
                await self._call_ref(
                    ref, RangeAdopt, tier="replica", parts=response.payload
                )

    # -- runtime load rebalance ------------------------------------------------

    async def _runtime_rebalance(
        self,
        tolerance: float = 1.25,
        max_rounds: int = 64,
        max_splits: int = 2,
        max_partitions_per_vnode: int = 1024,
    ) -> Tuple[bool, str]:
        """One load-aware rebalance event executed over the served cluster.

        Measure → plan → execute rounds with the runtime provider feeding
        the same pure planner the in-process engine uses (tolerance and
        split budget match :func:`~repro.workloads.churn.apply_topology_event`'s
        rebalance defaults).  Each planned transfer is executed by ordering
        the source snode to push the rows directly to the target
        (:class:`~repro.cluster.messages.PeerTransferRequest`); the twin
        mirrors the executed action through
        :meth:`~repro.core.base.BaseDHT.execute_load_round` so ownership,
        placement and future diffs stay authoritative.  A source that dies
        mid-push is recovered like a restart and the event aborts cleanly.
        A replica maintenance pass restores placement afterwards.
        """
        before = self._snapshot()
        before_cover = self._replica_cover(before.partitions)
        provider = RuntimeLoadProvider(self)
        coord_before = self._coordinator_bytes()
        self._rebalance_loss = False

        snapshot = await provider.measure()
        report = LoadRebalanceReport(
            total_rows=snapshot.total_rows,
            before_max=snapshot.max_snode_rows,
            before_mean=snapshot.mean_snode_rows,
            before_max_over_mean=snapshot.max_over_mean,
            after_max=snapshot.max_snode_rows,
            after_mean=snapshot.mean_snode_rows,
            after_max_over_mean=snapshot.max_over_mean,
        )
        peer_bytes = 0
        coordinator_transfer_bytes = 0
        restarted: Set[VnodeRef] = set()
        failure_note = ""
        boosts: Dict[Any, int] = {}
        aborted = False

        if snapshot.counts and snapshot.total_rows:
            while report.rounds < max_rounds and not aborted:
                plan = plan_load_round(
                    snapshot,
                    pmin=self.twin.config.pmin,
                    pmax=self.twin.config.pmax,
                    bh=self.bh,
                    tolerance=tolerance,
                    allow_splits=report.splits < max_splits,
                    level_boosts=boosts,
                    max_partitions_per_vnode=max_partitions_per_vnode,
                )
                if not plan:
                    break
                report.rounds += 1
                for action in plan.transfers:
                    start = action.partition.start(self.bh)
                    end = action.partition.end(self.bh)
                    target = self.handles[action.recipient.snode.value]
                    coord0 = self._coordinator_bytes()
                    try:
                        response = await self._call_ref(
                            action.victim,
                            PeerTransferRequest,
                            target_ref=action.recipient.canonical_name,
                            target_address=target.address,
                            ranges=_inclusive([(start, end)]),
                        )
                    except (RpcError, ConnectionError, OSError):
                        failure_note, lost_refs = await self._recover_failed_transfer(
                            action, (start, end), before, before_cover
                        )
                        restarted |= lost_refs
                        aborted = True
                        break
                    coordinator_transfer_bytes += self._coordinator_bytes() - coord0
                    report.transfers += 1
                    report.partitions_moved += 1
                    report.rows_moved += int(response.payload["rows"])
                    peer_bytes += int(response.payload["peer_bytes"])
                    self.twin.execute_load_round(LoadRebalancePlan(actions=[action]))
                if aborted:
                    break
                for action in plan.splits:
                    self.twin.execute_load_round(LoadRebalancePlan(actions=[action]))
                    boosts[action.scope] = boosts.get(action.scope, 0) + 1
                    report.splits += 1
                await self._push_topology()
                snapshot = await provider.measure()

            report.after_max = snapshot.max_snode_rows
            report.after_mean = snapshot.mean_snode_rows
            report.after_max_over_mean = snapshot.max_over_mean

        await self._push_topology()
        await self._replica_maintenance(self._snapshot(), before_cover, restarted)

        record = report.as_dict()
        record["coordinator_bytes"] = self._coordinator_bytes() - coord_before
        record["coordinator_transfer_bytes"] = coordinator_transfer_bytes
        record["peer_bytes"] = peer_bytes
        record["aborted"] = aborted
        self.rebalance_records.append(record)

        note = report.summary()
        if failure_note:
            note = f"{note}; {failure_note}"
        return True, note

    async def _recover_failed_transfer(
        self,
        action,
        hash_range: Tuple[int, int],
        before: _TwinState,
        before_cover: Dict[VnodeRef, List[Tuple[int, int]]],
    ) -> Tuple[str, Set[VnodeRef]]:
        """Clean up after a transfer source died mid-peer-push.

        The handshake is adopt-before-drop, so at the moment of death the
        moved rows exist on the target (already adopted), on the source
        (never dropped), or on both — never on neither.  The failed action
        was not mirrored on the twin (ownership stays with the victim), so
        the target's partial adoption is dropped — idempotent, it owned no
        primary rows in that range — and the source is recovered like a
        restart: WAL replay when durable, replica rebuild otherwise (the
        pre-event replica cover is still physically intact mid-rebalance
        because replica maintenance only runs after the rounds).  Returns
        a note plus the refs whose replica tiers must be refilled.
        """
        await self._call_ref(
            action.recipient, RangeDrop, ranges=_inclusive([hash_range])
        )
        sid = action.victim.snode.value
        handle = self.handles.get(sid)
        if handle is None:
            return f"transfer source s{sid} gone", set()
        refs = set(before.hosted.get(sid, set()))
        self._retire_rpc_bytes(handle)
        await self.faults.reboot(handle)
        self.client.connect(sid, handle.rpc)
        if not handle.in_process:
            await self._wait_ready(handle)
            for ref in sorted(refs):
                await self._call(sid, VnodeCreate, ref=ref.canonical_name, fresh=False)
        note = f"transfer source s{sid} died mid-transfer; recovered"
        if self.durable:
            for ref in sorted(refs):
                await self._call_ref(ref, WalReplay)
        else:
            current = self._snapshot()
            lost = 0
            for start, end, owner in current.ownership:
                if owner not in refs:
                    continue
                recovered = await self._rebuild_from_replica(
                    start, end, owner, before, refs, before_cover
                )
                if not recovered:
                    lost += 1
            if lost:
                self._rebalance_loss = True
                note = (
                    f"transfer source s{sid} died mid-transfer; "
                    f"{lost} ranges unrecoverable"
                )
        return note, refs

    # -- verification ----------------------------------------------------------

    async def gather_stats(
        self, partitions: bool = False, timeout: Optional[float] = None
    ) -> Dict[int, Dict[str, Any]]:
        """One concurrent NodeStats round: ``{snode_id: stats payload}``.

        Requests go out to every served node at once with a per-request
        timeout, so a single paused snode delays the round by at most one
        timeout instead of stalling every node behind it serially.
        """
        ids = sorted(self.handles)
        per_request = timeout if timeout is not None else self.rpc_timeout
        responses = await asyncio.gather(
            *(
                self._call(
                    snode_id,
                    NodeStatsRequest,
                    partitions=partitions,
                    timeout=per_request,
                )
                for snode_id in ids
            )
        )
        return {
            snode_id: response.payload
            for snode_id, response in zip(ids, responses)
        }

    async def measured_total(self) -> int:
        """Summed primary rows across every served node."""
        stats = await self.gather_stats()
        return sum(int(payload["primary"]) for payload in stats.values())

    async def check_conservation(self, allow_loss: bool) -> int:
        """Raise :class:`HarnessError` unless the cluster holds what was loaded.

        ``allow_loss`` sanctions a deficit (a crash with no surviving
        replica); the loss is recorded and the expectation rebased.
        Returns the measured total.
        """
        measured = await self.measured_total()
        if measured != self.expected_total:
            deficit = self.expected_total - measured
            if allow_loss and deficit > 0:
                self.items_lost += deficit
                self.expected_total = measured
            else:
                raise HarnessError(
                    f"conservation violated: expected {self.expected_total} "
                    f"primary rows, measured {measured}"
                )
        return measured

    async def verify_replication(self) -> int:
        """Per-partition primary vs replica range counts over RPC.

        Returns the number of (partition, replica) pairs checked; raises
        :class:`HarnessError` on the first mismatch.
        """
        state = self._snapshot()
        checked = 0
        for start, end, primary, replicas in state.partitions:
            if not replicas:
                continue
            ranges = _inclusive([(start, end)])
            response = await self._call_ref(primary, RangeCount, ranges=ranges)
            primary_count = response.payload[0]
            for ref in replicas:
                response = await self._call_ref(
                    ref, RangeCount, tier="replica", ranges=ranges
                )
                if response.payload[0] != primary_count:
                    raise HarnessError(
                        f"replica divergence on [{start}, {end}): primary "
                        f"{primary} holds {primary_count}, replica {ref} "
                        f"holds {response.payload[0]}"
                    )
                checked += 1
        return checked

    # -- trace replay ----------------------------------------------------------

    def make_keys(self):
        """The distinct key population of the trace (same as the churn engine)."""
        if self.spec.workload == "ids":
            return id_keys(self.spec.n_keys, rng=self.spec.seed)
        if self.spec.workload == "zipf":
            return zipf_id_keys(
                self.spec.n_keys,
                exponent=self.spec.zipf_exponent,
                n_ranges=self.spec.zipf_ranges,
                rng=self.spec.seed,
            )
        return uniform_keys(self.spec.n_keys, rng=self.spec.seed)

    async def run(self, oracle: bool = True) -> HarnessReport:
        """Replay the trace against the served cluster and verify every event.

        With ``oracle=True`` the same trace is profiled by the lifecycle
        simulator and each applied topology event is annotated with its
        simulated cost-model duration.
        """
        if not self._started:
            await self.start()
        keys = self.make_keys()
        key_column = (
            keys if isinstance(keys, np.ndarray) else np.asarray(keys, dtype=object)
        )
        read_rng = np.random.default_rng(self.spec.seed + 1)

        records: List[EventRecord] = []
        loaded = lookups = applied = skipped = 0
        conservation_checks = replication_checks = 0
        replicated = self.spec.replication_factor > 1
        wall_start = time.perf_counter()

        for event in self.trace:
            if event.kind == "load":
                chunk = keys[event.lo : event.hi]
                t0 = time.perf_counter()
                n = await self.client.bulk_load(chunk)
                duration = time.perf_counter() - t0
                loaded += n
                self.expected_total += n
                records.append(EventRecord("load", event.describe(), True, duration))
            elif event.kind == "lookup":
                picks = read_rng.integers(0, event.hi, size=event.n_reads)
                chunk = key_column[picks]
                t0 = time.perf_counter()
                for key in chunk.tolist():
                    await self.client.get(key)
                duration = time.perf_counter() - t0
                lookups += len(chunk)
                records.append(EventRecord("lookup", event.describe(), True, duration))
            else:
                t0 = time.perf_counter()
                event_applied, note = await self._apply_topology_event(event)
                duration = time.perf_counter() - t0
                if event_applied:
                    applied += 1
                    allow_loss = (
                        not replicated
                        and (
                            event.kind == "snode_crash"
                            or (event.kind == "snode_restart" and not self.durable)
                        )
                    ) or (event.kind == "rebalance" and self._rebalance_loss)
                    await self.check_conservation(allow_loss)
                    conservation_checks += 1
                    if replicated:
                        replication_checks += await self.verify_replication()
                else:
                    skipped += 1
                records.append(
                    EventRecord(event.kind, event.describe(), event_applied, duration, note)
                )

        wall = time.perf_counter() - wall_start

        if oracle:
            self._annotate_with_oracle(records)

        latencies: List[float] = []
        for handle in self.handles.values():
            if handle.rpc is not None:
                latencies.extend(handle.rpc.call_durations)

        return HarnessReport(
            name=self.spec.name,
            processes=self.processes,
            n_events=len(self.trace),
            applied=applied,
            skipped=skipped,
            loaded=loaded,
            lookups=lookups,
            items_lost=self.items_lost,
            conservation_checks=conservation_checks,
            replication_checks=replication_checks,
            wall_s=wall,
            events=records,
            rpc_latencies_s=latencies,
            faults=list(self.faults.log),
            rebalances=list(self.rebalance_records),
            coordinator_bytes=self._coordinator_bytes(),
        )

    def _annotate_with_oracle(self, records: List[EventRecord]) -> None:
        """Pair each topology event with the simulator's cost-model duration.

        The lifecycle simulator replays the *same trace* against its own
        single-process DHT (loads included, so data-dependent costs are
        real) and produces one profile per topology event, in trace order —
        the pairing is positional.
        """
        simulator = LifecycleProtocolSimulator(
            spec=self.spec, trace=self.trace, costs=self.costs
        )
        profiles = simulator.profiles()
        topology_records = [
            record for record in records if record.kind not in ("load", "lookup")
        ]
        for record, profile in zip(topology_records, profiles):
            duration, _messages, _nbytes = lifecycle_event_cost(self.costs, profile)
            record.simulated_s = duration


__all__ = [
    "ClusterHarness",
    "EventRecord",
    "HarnessError",
    "HarnessReport",
    "RuntimeLoadProvider",
]
