"""Fault injection against served snodes: pause, kill -9, crash, reboot.

The injector operates on :class:`NodeHandle` objects — one per served
snode, covering both hosting modes:

- **in-process** (``handle.process is None``): the node lives in the
  harness's event loop.  kill -9 is simulated faithfully by dropping every
  connection without a goodbye and losing the node's in-memory rows while
  the on-disk WAL/segments survive; a *crash* additionally destroys the
  data directory (the machine is gone, not just the process).
- **process mode**: the node is a real OS process and kill -9 is a real
  ``SIGKILL``.  Reboot re-spawns the process through the harness-supplied
  spawner callback.

A *paused* server keeps accepting and reading but never replies — the
canonical hung peer that exercises the RPC client's timeout/retry path.
"""

from __future__ import annotations

import asyncio
import shutil
import signal
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, List, Optional

from repro.runtime.node import SnodeNode, SnodeServer
from repro.runtime.rpc import RpcClient


@dataclass
class NodeHandle:
    """Everything the coordinator knows about one served snode."""

    snode_id: int
    bh: int
    replication_factor: int
    data_dir: Optional[str] = None
    node: Optional[SnodeNode] = None
    server: Optional[SnodeServer] = None
    rpc: Optional[RpcClient] = None
    process: Any = None
    address: Any = None
    #: True when the snode runs as a real OS process.  A stable mode flag —
    #: ``process`` itself goes ``None`` while the victim of a kill -9 is
    #: down, which must not change how it is rebooted.
    process_mode: bool = False

    @property
    def in_process(self) -> bool:
        return not self.process_mode

    async def close(self) -> None:
        """Graceful teardown: close the client, stop the server/process."""
        if self.rpc is not None:
            await self.rpc.close()
        if self.node is not None:
            await self.node.close_peers()
        if self.server is not None:
            await self.server.stop()
        if self.process is not None:
            self.process.terminate()
            self.process.wait()
            self.process = None


#: Re-spawns a process-mode node after a reboot (harness-supplied).
Spawner = Callable[[NodeHandle], Awaitable[None]]


class FaultInjector:
    """Inject pause / kill -9 / crash faults and reboot their victims."""

    def __init__(self, spawner: Optional[Spawner] = None):
        self._spawner = spawner
        #: ``(fault, snode_id)`` in injection order.
        self.log: List[tuple] = []

    # -- hangs -----------------------------------------------------------------

    def pause(self, handle: NodeHandle) -> None:
        """Make the server read but never reply (a hung process)."""
        if handle.server is None:
            raise RuntimeError("pause requires an in-process server")
        handle.server.paused = True
        self.log.append(("pause", handle.snode_id))

    def resume(self, handle: NodeHandle) -> None:
        if handle.server is None:
            raise RuntimeError("resume requires an in-process server")
        handle.server.paused = False
        self.log.append(("resume", handle.snode_id))

    # -- kill -9 and crash -----------------------------------------------------

    async def kill(self, handle: NodeHandle) -> None:
        """kill -9: memory is gone, the data directory survives."""
        self.log.append(("kill", handle.snode_id))
        if handle.rpc is not None:
            await handle.rpc.close()
        if handle.in_process:
            assert handle.server is not None and handle.node is not None
            await handle.server.kill()
            await handle.node.close_peers()
            handle.node.lose_memory()
        elif handle.process is not None:
            handle.process.send_signal(signal.SIGKILL)
            handle.process.wait()
            handle.process = None

    async def crash(self, handle: NodeHandle) -> None:
        """Crash: the host is gone — process killed *and* disk destroyed."""
        self.log.append(("crash", handle.snode_id))
        if handle.rpc is not None:
            await handle.rpc.close()
        if handle.in_process:
            assert handle.server is not None
            await handle.server.kill()
            if handle.node is not None:
                await handle.node.close_peers()
            handle.node = None
        elif handle.process is not None:
            handle.process.send_signal(signal.SIGKILL)
            handle.process.wait()
            handle.process = None
        if handle.data_dir is not None:
            shutil.rmtree(handle.data_dir, ignore_errors=True)

    # -- reboot ----------------------------------------------------------------

    async def reboot(self, handle: NodeHandle) -> None:
        """Bring a killed node back up (same disk, empty memory).

        In process mode the node comes back as a *new* process through the
        spawner; the coordinator then re-creates its vnodes with
        ``fresh=False`` and orders WAL replay.  In-process mode keeps the
        node object (whose memory the kill already dropped) and serves it
        on a fresh ephemeral address.
        """
        self.log.append(("reboot", handle.snode_id))
        if handle.in_process:
            assert handle.node is not None
            server = SnodeServer(handle.node)
            await server.start()
            handle.server = server
            handle.address = server.address
            handle.rpc = RpcClient(server.address)
            # Give the loop one tick so the listening socket is accepting.
            await asyncio.sleep(0)
        else:
            if self._spawner is None:
                raise RuntimeError("process-mode reboot requires a spawner")
            await self._spawner(handle)


__all__ = ["FaultInjector", "NodeHandle", "Spawner"]
