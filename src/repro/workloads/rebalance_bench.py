"""The skewed-load rebalancing scenario behind ``repro rebalance-bench``.

Builds a replicated cluster, bulk-loads a Zipf-skewed key population
(:func:`~repro.workloads.keys.zipf_id_keys` — keys whose *hash indexes*
cluster, the scenario the paper's count-only balance model cannot
express), then runs :meth:`~repro.core.base.BaseDHT.rebalance_load` and
reports the per-snode item-load statistics before and after, the rows
moved and the migration throughput.  The benchmark script
(``benchmarks/bench_rebalance.py``) runs the same scenario twice —
vectorized and legacy per-item migration — and gates on the speedup; the
CLI subcommand runs it once and can persist the report as the CI
``BENCH_rebalance.json`` artifact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List

from repro.core.base import BaseDHT
from repro.core.errors import ReproError
from repro.core.rebalance import LoadRebalanceReport, measure_loads
from repro.utils.validation import is_power_of_two
from repro.workloads.driver import APPROACHES, build_cluster
from repro.workloads.keys import zipf_id_keys


@dataclass(frozen=True)
class RebalanceBenchSpec:
    """Declarative description of one skewed-load rebalancing run."""

    #: Scenario name (shown in reports).
    name: str = "zipf-rebalance"
    #: Distinct integer keys to load (skew-placed on the ring).
    n_keys: int = 1_000_000
    #: Zipf exponent of the per-range popularity.
    exponent: float = 1.1
    #: Equal ring slices the Zipf mass is spread over (power of two).
    n_ranges: int = 256
    #: DHT approach: ``"local"`` (grouped) or ``"global"``.
    approach: str = "local"
    #: Cluster shape (few vnodes per snode keeps the initial skew strong).
    n_snodes: int = 16
    vnodes_per_snode: int = 2
    pmin: int = 8
    vmin: int = 8
    #: Copies kept of every item (2 exercises the replication-safe path).
    replication_factor: int = 2
    #: Engine knobs (see :meth:`~repro.core.base.BaseDHT.rebalance_load`).
    tolerance: float = 1.15
    max_rounds: int = 64
    max_splits: int = 12
    #: ``False`` runs the legacy per-item migration baseline
    #: (``storage.vectorized_migration = False``).
    vectorized: bool = True
    #: Master seed (key generation and cluster build).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.approach not in APPROACHES:
            raise ValueError(f"approach must be one of {APPROACHES}, got {self.approach!r}")
        if self.n_keys < 1:
            raise ValueError("n_keys must be >= 1")
        if self.n_snodes < 2 or self.vnodes_per_snode < 1:
            raise ValueError("need n_snodes >= 2 and vnodes_per_snode >= 1")
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        # Validate the knobs consumed downstream (zipf_id_keys and
        # plan_load_round raise too, but only mid-run with a traceback; the
        # CLI maps this ValueError to a clean exit instead).
        if self.exponent <= 0:
            raise ValueError("exponent must be strictly positive")
        if self.n_ranges < 2 or not is_power_of_two(self.n_ranges):
            raise ValueError(
                f"n_ranges must be a power of two >= 2, got {self.n_ranges}"
            )
        if self.tolerance < 1.0:
            raise ValueError(f"tolerance must be >= 1.0, got {self.tolerance}")
        if self.max_rounds < 1 or self.max_splits < 0:
            raise ValueError("need max_rounds >= 1 and max_splits >= 0")


@dataclass
class RebalanceBenchReport:
    """Outcome of one rebalancing run (load, rebalance, verification)."""

    name: str
    approach: str
    vectorized: bool
    n_keys: int
    replication_factor: int
    load_seconds: float
    rebalance: LoadRebalanceReport
    #: Per-snode item loads after rebalancing (snode id order).
    final_snode_rows: Dict[int, int]
    n_snodes: int
    n_vnodes: int
    n_partitions: int

    @property
    def reduction(self) -> float:
        """How many times smaller the max/mean per-snode item load got."""
        return self.rebalance.reduction

    @property
    def rows_per_second(self) -> float:
        """Rows migrated per second of rebalancing time."""
        return self.rebalance.rows_per_second

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (the ``BENCH_rebalance.json`` artifact)."""
        return {
            "name": self.name,
            "approach": self.approach,
            "vectorized": self.vectorized,
            "n_keys": self.n_keys,
            "replication_factor": self.replication_factor,
            "load_seconds": self.load_seconds,
            "n_snodes": self.n_snodes,
            "n_vnodes": self.n_vnodes,
            "n_partitions": self.n_partitions,
            "rebalance": self.rebalance.as_dict(),
        }

    def as_rows(self) -> List[List[str]]:
        """Property/value rows for :func:`repro.report.format_table`."""
        r = self.rebalance
        return [
            ["scenario", self.name],
            ["approach", self.approach],
            ["migration path", "vectorized" if self.vectorized else "per-item scan"],
            ["keys loaded", f"{self.n_keys:,} (x{self.replication_factor} replication)"],
            ["max/mean snode load before", f"{r.before_max_over_mean:.2f} "
                                           f"({r.before_max:,} vs {r.before_mean:,.0f})"],
            ["max/mean snode load after", f"{r.after_max_over_mean:.2f} "
                                          f"({r.after_max:,} vs {r.after_mean:,.0f})"],
            ["reduction", f"{r.reduction:.2f}x"],
            ["actions", f"{r.transfers} transfers, {r.splits} scope splits "
                        f"over {r.rounds} rounds"],
            ["rows moved", f"{r.rows_moved:,} over {r.partitions_moved:,} "
                           f"partition handovers"],
            ["rebalance seconds", f"{r.seconds:.3f}"],
            ["moved rows/s", f"{r.rows_per_second:,.0f}"],
            ["final topology", f"{self.n_snodes} snodes, {self.n_vnodes} vnodes, "
                               f"{self.n_partitions} partitions"],
        ]


def run_rebalance_bench(spec: RebalanceBenchSpec) -> RebalanceBenchReport:
    """Run one scenario: build, load skewed, rebalance, verify, report.

    Verifies zero item loss (merge-free logical count unchanged), replica
    consistency (when replicated) and the full invariant suite; any failure
    raises :class:`~repro.core.errors.ReproError` rather than reporting a
    corrupted win.
    """
    dht: BaseDHT = build_cluster(
        spec.approach,
        spec.n_snodes,
        spec.vnodes_per_snode,
        pmin=spec.pmin,
        vmin=spec.vmin,
        replication_factor=spec.replication_factor,
        seed=spec.seed,
    )
    keys = zipf_id_keys(
        spec.n_keys,
        bh=dht.config.bh,
        exponent=spec.exponent,
        n_ranges=spec.n_ranges,
        rng=spec.seed,
    )
    t0 = time.perf_counter()
    dht.bulk_load(keys)
    load_seconds = time.perf_counter() - t0

    dht.storage.vectorized_migration = spec.vectorized
    rows_before = dht.storage.fast_primary_count()
    rebalance = dht.rebalance_load(
        max_rounds=spec.max_rounds,
        tolerance=spec.tolerance,
        max_splits=spec.max_splits,
    )
    rows_after = dht.storage.fast_primary_count()
    if rows_after != rows_before:
        raise ReproError(
            f"rebalance lost items: {rows_before} primary rows before, "
            f"{rows_after} after"
        )
    if spec.replication_factor > 1:
        dht.verify_replication()
    dht.check_invariants()

    snode_rows = {
        sid.value: rows for sid, rows in measure_loads(dht).snode_rows().items()
    }
    return RebalanceBenchReport(
        name=spec.name,
        approach=spec.approach,
        vectorized=spec.vectorized,
        n_keys=spec.n_keys,
        replication_factor=spec.replication_factor,
        load_seconds=load_seconds,
        rebalance=rebalance,
        final_snode_rows=dict(sorted(snode_rows.items())),
        n_snodes=dht.n_snodes,
        n_vnodes=dht.n_vnodes,
        n_partitions=dht.total_partitions,
    )
