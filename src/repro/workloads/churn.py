"""Churn engine: replay timed topology-event traces against a live DHT.

The paper's elastic DHT is defined by partitions changing hands as vnodes
come and go, but the bulk scenario driver (:mod:`repro.workloads.driver`)
only exercises *growth* against a static topology.  This module closes the
gap: a churn trace interleaves **topology events** — ``snode_join``,
``snode_leave``, ``enrollment_change``, ``snode_crash``, ``snode_restart``,
``rebalance`` — with bulk
``load``/``lookup`` chunks, and :class:`ChurnEngine` replays the trace
against a live :class:`~repro.core.global_model.GlobalDHT` or
:class:`~repro.core.local_model.LocalDHT` with an **item-conservation
check** after every topology event (rebalancing must never create or
destroy data).

Crashes are the failure-injection half of the replication extension
(:mod:`repro.core.replication`): a crash drops a live snode *without* a
graceful drain — its stores are wiped, ownership moves to survivors, and a
re-replication pass rebuilds the lost primaries from surviving replicas.
The conservation check is replication-aware: non-crash events must conserve
the logical item count exactly; a crash may shrink it only when no replica
survived (``replication_factor == 1``), and with replication enabled the
engine also verifies replica/primary consistency after every event.

The trace is generated up front by :func:`make_churn_trace` from a
declarative :class:`ChurnSpec`, fully deterministic for a given seed: the
generator simulates the DHT's sequential snode-id allocation so every event
names its concrete target snode, and the engine asserts the ids line up at
replay time.  Events the model cannot serve — e.g. removing the last vnode
of a group while other groups exist, which the local approach's removal
extension rejects — are recorded as *skipped* rather than aborting the run;
conservation is checked either way.

Replay produces a :class:`ChurnReport`: migration volume (items/partitions
moved, via :class:`~repro.core.storage.MigrationStats` deltas per event),
load/lookup throughput *under churn*, time spent in topology events, and
the post-churn balance metrics ``sigma_qv``/``sigma_qn``.  The
``repro churn-bench`` CLI subcommand is a thin wrapper that prints the
report and can persist it as JSON.

Conservation checks use :meth:`~repro.core.storage.DHTStorage.fast_primary_count`
— logical (primary) rows counted without merging pending segments — so the
check itself does not destroy the columnar segments that make vectorized
migration fast, and replica rows (whose population legitimately changes
with placement) stay out of the conserved quantity; the final deep
verification recounts through the merged path and runs the full invariant
suite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.base import BaseDHT
from repro.core.errors import ReproError
from repro.core.rebalance import LoadRebalanceReport
from repro.core.replication import CrashReport, RestartReport
from repro.metrics.balance import item_load_stats
from repro.core.ids import SnodeId
from repro.workloads.driver import APPROACHES, build_cluster
from repro.workloads.keys import id_keys, uniform_keys, zipf_id_keys

#: Trace families the churn engine can replay.
CHURN_WORKLOADS = ("ids", "uniform", "zipf")
#: Event kinds that mutate the topology (and trigger conservation checks).
TOPOLOGY_KINDS = (
    "snode_join",
    "snode_leave",
    "enrollment_change",
    "snode_crash",
    "snode_restart",
    "rebalance",
)


@dataclass(frozen=True)
class ChurnEvent:
    """One step of a churn trace.

    ``kind`` is one of :data:`TOPOLOGY_KINDS` plus the data-plane kinds
    ``"load"`` (bulk-load the key slice ``[lo, hi)``) and ``"lookup"``
    (issue ``n_reads`` batch lookups over the first ``hi`` loaded keys).
    Topology events name their concrete target snode id; joins and
    enrollment changes carry the target enrollment in ``vnodes``.  A
    ``"snode_crash"`` drops a live snode *without a graceful drain* — its
    data is destroyed and must be rebuilt from replicas.
    """

    kind: str
    snode: int = -1
    vnodes: int = 0
    lo: int = 0
    hi: int = 0
    n_reads: int = 0

    def describe(self) -> str:
        """Short human-readable form (used in outcome rows)."""
        if self.kind == "load":
            return f"load keys[{self.lo}:{self.hi}]"
        if self.kind == "lookup":
            return f"lookup {self.n_reads} of first {self.hi}"
        if self.kind == "snode_join":
            return f"join s{self.snode} ({self.vnodes} vnodes)"
        if self.kind == "snode_leave":
            return f"leave s{self.snode}"
        if self.kind == "snode_crash":
            return f"crash s{self.snode}"
        if self.kind == "snode_restart":
            return f"restart s{self.snode}"
        if self.kind == "rebalance":
            return "rebalance item load"
        return f"enroll s{self.snode} -> {self.vnodes} vnodes"


@dataclass(frozen=True)
class ChurnSpec:
    """Declarative description of one churn scenario."""

    #: Scenario name (shown in reports).
    name: str = "churn"
    #: Trace family: ``"ids"`` (uint64 ids, fully vectorized), ``"uniform"``
    #: or ``"zipf"`` (distinct uint64 ids with zipf-skewed hash-space
    #: placement — the workload that makes load-aware rebalancing matter).
    workload: str = "ids"
    #: Number of distinct keys loaded over the course of the trace.
    n_keys: int = 100_000
    #: Number of topology events (joins/leaves/enrollment changes).
    n_events: int = 64
    #: DHT approach: ``"local"`` (grouped) or ``"global"``.
    approach: str = "local"
    #: Snodes enrolled before the trace starts.
    n_snodes: int = 8
    #: Vnodes per snode (initial enrollment and default join enrollment).
    vnodes_per_snode: int = 4
    #: The trace never shrinks the cluster below this many snodes.
    min_snodes: int = 2
    #: The trace never grows the cluster beyond this many snodes.
    max_snodes: int = 24
    #: The key population is loaded in this many chunks spread over the trace.
    load_chunks: int = 8
    #: Lookups issued per loaded key of each chunk (read trace volume).
    read_multiplier: float = 0.5
    #: Relative odds of each topology event kind.
    join_weight: float = 0.4
    leave_weight: float = 0.3
    enroll_weight: float = 0.3
    #: Relative odds of a crash (ungraceful snode failure).  Zero keeps the
    #: pre-replication trace mix bit-identical.
    crash_weight: float = 0.0
    #: Relative odds of a load-aware rebalance pass
    #: (:meth:`~repro.core.base.BaseDHT.rebalance_load`).  Zero keeps older
    #: traces bit-identical.
    rebalance_weight: float = 0.0
    #: Relative odds of a hard restart (kill -9 + reboot: RAM lost, disk —
    #: when :attr:`data_dir` is set — kept, topology unchanged).  Zero keeps
    #: older traces bit-identical.
    restart_weight: float = 0.0
    #: Copies kept of every item (``1`` = no replication, the seed model).
    replication_factor: int = 1
    #: Directory for the durable tier (WAL + checkpointed segments per
    #: primary vnode); ``None`` runs the RAM-only model.  With a durable
    #: tier, restarted snodes must serve every acknowledged write even at
    #: ``replication_factor == 1``.
    data_dir: Optional[str] = None
    #: Worker processes for the multicore bulk pipeline (0 = serial; the
    #: equivalence tests replay identical traces at several worker counts).
    workers: int = 0
    #: Model parameters (small defaults keep 64-event traces fast).
    pmin: int = 8
    vmin: int = 8
    #: Skew exponent of the ``"zipf"`` workload (ignored otherwise).
    zipf_exponent: float = 1.1
    #: Hash-space buckets of the ``"zipf"`` workload (power of two).
    zipf_ranges: int = 256
    #: Master seed (trace generation, cluster build and read picks).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.workload not in CHURN_WORKLOADS:
            raise ValueError(
                f"workload must be one of {CHURN_WORKLOADS}, got {self.workload!r}"
            )
        if self.approach not in APPROACHES:
            raise ValueError(f"approach must be one of {APPROACHES}, got {self.approach!r}")
        if self.n_keys < 1:
            raise ValueError("n_keys must be >= 1")
        if self.n_events < 0:
            raise ValueError("n_events must be non-negative")
        if self.n_snodes < 1 or self.vnodes_per_snode < 1:
            raise ValueError("n_snodes and vnodes_per_snode must be >= 1")
        if not (1 <= self.min_snodes <= self.n_snodes <= self.max_snodes):
            raise ValueError("need 1 <= min_snodes <= n_snodes <= max_snodes")
        if self.load_chunks < 1:
            raise ValueError("load_chunks must be >= 1")
        if self.read_multiplier < 0:
            raise ValueError("read_multiplier must be non-negative")
        weights = (
            self.join_weight,
            self.leave_weight,
            self.enroll_weight,
            self.crash_weight,
            self.rebalance_weight,
            self.restart_weight,
        )
        if min(weights) < 0 or sum(weights) <= 0:
            raise ValueError("event weights must be non-negative and not all zero")
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if self.zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")
        if self.zipf_ranges < 2 or self.zipf_ranges & (self.zipf_ranges - 1):
            raise ValueError("zipf_ranges must be a power of two >= 2")


def make_churn_trace(spec: ChurnSpec) -> List[ChurnEvent]:
    """Generate the deterministic event trace described by ``spec``.

    Topology events are drawn with the spec's weights under the cluster-size
    bounds (a leave — or crash — at ``min_snodes`` falls back to a join; a
    join at ``max_snodes`` falls back to an enrollment change), tracking the
    DHT's sequential snode-id allocation so every event names a concrete
    snode.  The key population is split into ``load_chunks`` slices
    interleaved evenly with the topology events, each followed by a
    batch-lookup event over the keys loaded so far.

    With ``crash_weight == 0`` (the default) the crash kind never enters the
    weighted draw, so traces are bit-identical to the pre-replication
    generator for the same spec and seed; ``rebalance_weight == 0`` likewise
    keeps pre-rebalancing traces unchanged.  A ``rebalance`` event targets
    no snode (it runs :meth:`~repro.core.base.BaseDHT.rebalance_load` over
    the whole DHT) and is never substituted by the cluster-size bounds.
    """
    rng = np.random.default_rng(spec.seed)
    alive = list(range(spec.n_snodes))
    next_id = spec.n_snodes
    kinds = ["snode_join", "snode_leave", "enrollment_change"]
    raw_weights = [spec.join_weight, spec.leave_weight, spec.enroll_weight]
    if spec.crash_weight > 0:
        kinds.append("snode_crash")
        raw_weights.append(spec.crash_weight)
    if spec.rebalance_weight > 0:
        kinds.append("rebalance")
        raw_weights.append(spec.rebalance_weight)
    if spec.restart_weight > 0:
        kinds.append("snode_restart")
        raw_weights.append(spec.restart_weight)
    weights = np.array(raw_weights, dtype=np.float64)
    weights /= weights.sum()

    topology: List[ChurnEvent] = []
    for _ in range(spec.n_events):
        kind = kinds[int(rng.choice(len(kinds), p=weights))]
        if kind == "rebalance":
            topology.append(ChurnEvent("rebalance"))
            continue
        if kind == "snode_restart":
            # A restart leaves the cluster size unchanged, so no bounds
            # substitution applies — any alive snode can be restarted.
            pick = alive[int(rng.integers(0, len(alive)))]
            topology.append(ChurnEvent("snode_restart", snode=pick))
            continue
        if kind in ("snode_leave", "snode_crash") and len(alive) <= spec.min_snodes:
            kind = "snode_join"
        if kind == "snode_join" and len(alive) >= spec.max_snodes:
            kind = "enrollment_change"
        if kind == "snode_join":
            topology.append(
                ChurnEvent("snode_join", snode=next_id, vnodes=spec.vnodes_per_snode)
            )
            alive.append(next_id)
            next_id += 1
        elif kind in ("snode_leave", "snode_crash"):
            pick = alive.pop(int(rng.integers(0, len(alive))))
            topology.append(ChurnEvent(kind, snode=pick))
        else:
            pick = alive[int(rng.integers(0, len(alive)))]
            target = 1 + int(rng.integers(0, 2 * spec.vnodes_per_snode))
            topology.append(ChurnEvent("enrollment_change", snode=pick, vnodes=target))

    bounds = np.linspace(0, spec.n_keys, spec.load_chunks + 1).astype(int)
    trace: List[ChurnEvent] = []
    taken = 0
    for chunk in range(spec.load_chunks):
        lo, hi = int(bounds[chunk]), int(bounds[chunk + 1])
        if hi > lo:
            trace.append(ChurnEvent("load", lo=lo, hi=hi))
            n_reads = int(round((hi - lo) * spec.read_multiplier))
            if n_reads:
                trace.append(ChurnEvent("lookup", hi=hi, n_reads=n_reads))
        upto = (chunk + 1) * spec.n_events // spec.load_chunks
        trace.extend(topology[taken:upto])
        taken = upto
    trace.extend(topology[taken:])
    return trace


@dataclass
class TopologyOutcome:
    """What applying one topology event to a live DHT reported.

    ``note`` is the human-readable remark for churn outcome rows; the crash
    and rebalance reports are kept so cost models (the control-plane
    protocol simulation of :mod:`repro.cluster.protocol`) can price the
    event from what it actually did.
    """

    note: str = ""
    crash: Optional[CrashReport] = None
    rebalance: Optional[LoadRebalanceReport] = None
    restart: Optional[RestartReport] = None


def apply_topology_event(
    dht: BaseDHT,
    event: ChurnEvent,
    rebalance_tolerance: float = 1.25,
    rebalance_max_splits: int = 2,
) -> TopologyOutcome:
    """Apply one topology event to a live DHT and report what it did.

    Shared by :class:`ChurnEngine` and the lifecycle protocol simulator
    (:class:`repro.cluster.protocol.LifecycleProtocolSimulator`), so both
    replay a trace with identical semantics.  Rebalance events run a
    maintenance pass, not a full shatter: under churn the next join/leave
    reshuffles load anyway, so the scope splits are capped (each doubles a
    whole scope's partition count and taxes every later topology event) and
    the tolerance is looser than a standalone rebalance.

    Raises :class:`~repro.core.errors.ReproError` for events the model
    cannot serve (callers record those as *skipped*).
    """
    if event.kind == "snode_join":
        snode = dht.add_snode()
        if snode.id.value != event.snode:  # pragma: no cover - defensive
            raise AssertionError(
                f"trace expected join of snode {event.snode}, DHT allocated {snode.id}"
            )
        dht.set_enrollment(snode, event.vnodes)
        return TopologyOutcome()
    if event.kind == "snode_leave":
        dht.remove_snode(SnodeId(event.snode))
        return TopologyOutcome()
    if event.kind == "enrollment_change":
        dht.set_enrollment(SnodeId(event.snode), event.vnodes)
        return TopologyOutcome()
    if event.kind == "snode_crash":
        report = dht.crash_snode(SnodeId(event.snode))
        note = ""
        if report.vnodes_stuck:
            note = (
                f"vnodes {', '.join(report.vnodes_stuck)} could not leave the "
                f"topology; wiped, kept enrolled and recovered in place"
            )
        return TopologyOutcome(note=note, crash=report)
    if event.kind == "snode_restart":
        restart = dht.restart_snode(SnodeId(event.snode))
        note = ""
        if restart.recovery is not None and restart.recovery.disk_replays:
            note = (
                f"replayed {restart.recovery.rows_replayed} rows from disk "
                f"({restart.recovery.disk_replays} vnode logs)"
            )
        return TopologyOutcome(note=note, restart=restart)
    if event.kind == "rebalance":
        report = dht.rebalance_load(
            tolerance=rebalance_tolerance, max_splits=rebalance_max_splits
        )
        return TopologyOutcome(note=report.summary(), rebalance=report)
    raise ValueError(f"unknown topology event kind {event.kind!r}")


@dataclass
class EventOutcome:
    """What one replayed event did (timing, migration volume, skip note)."""

    kind: str
    detail: str
    seconds: float
    items_moved: int = 0
    partitions_moved: int = 0
    applied: bool = True
    note: str = ""


@dataclass
class ChurnReport:
    """Outcome of one churn run: volume, throughput and balance."""

    name: str
    approach: str
    replication_factor: int
    n_events: int
    events_applied: int
    events_skipped: int
    joins: int
    leaves: int
    enrollment_changes: int
    crashes: int
    #: Load-aware rebalance passes executed (``rebalance`` events).
    rebalances: int
    #: Hard restarts executed (``snode_restart`` events: RAM lost, disk kept).
    restarts: int
    #: Logical items lost to crashes and restarts (always 0 when a replica
    #: or — for restarts — the durable tier survived).
    items_lost: int
    #: Replica rows rebuilt by recovery + sync (replica->primary restores
    #: plus primary->replica refills) over the whole run.
    replica_rows_rebuilt: int
    keys_loaded: int
    load_seconds: float
    lookups_issued: int
    lookup_seconds: float
    topology_seconds: float
    items_moved: int
    partitions_moved: int
    migrations: int
    max_event_items_moved: int
    conservation_checks: int
    final_items: int
    final_replica_items: int
    n_snodes: int
    n_vnodes: int
    n_partitions: int
    sigma_qv: float
    sigma_qn: float
    #: Item-weighted imbalance of the final state (merge-free; the
    #: quantity ``rebalance`` events optimize — the paper's sigma metrics
    #: above weigh partitions, not stored items).
    sigma_items_vnode: float = 0.0
    sigma_items_snode: float = 0.0
    max_mean_items_snode: float = 0.0
    outcomes: List[EventOutcome] = field(default_factory=list, repr=False)

    @property
    def load_keys_per_second(self) -> float:
        """Bulk-load throughput while the topology was churning."""
        return self.keys_loaded / self.load_seconds if self.load_seconds > 0 else 0.0

    @property
    def lookup_keys_per_second(self) -> float:
        """Batch-lookup throughput while the topology was churning."""
        return self.lookups_issued / self.lookup_seconds if self.lookup_seconds > 0 else 0.0

    @property
    def migration_items_per_second(self) -> float:
        """Items migrated per second of topology-event time."""
        return self.items_moved / self.topology_seconds if self.topology_seconds > 0 else 0.0

    @property
    def mean_event_items_moved(self) -> float:
        """Average number of items moved per applied topology event."""
        return self.items_moved / self.events_applied if self.events_applied else 0.0

    def as_dict(self, include_events: bool = False) -> Dict[str, Any]:
        """JSON-serializable form (the ``BENCH_churn.json`` artifact)."""
        out: Dict[str, Any] = {
            "name": self.name,
            "approach": self.approach,
            "replication_factor": self.replication_factor,
            "n_events": self.n_events,
            "events_applied": self.events_applied,
            "events_skipped": self.events_skipped,
            "joins": self.joins,
            "leaves": self.leaves,
            "enrollment_changes": self.enrollment_changes,
            "crashes": self.crashes,
            "rebalances": self.rebalances,
            "restarts": self.restarts,
            "items_lost": self.items_lost,
            "replica_rows_rebuilt": self.replica_rows_rebuilt,
            "keys_loaded": self.keys_loaded,
            "load_seconds": self.load_seconds,
            "load_keys_per_second": self.load_keys_per_second,
            "lookups_issued": self.lookups_issued,
            "lookup_seconds": self.lookup_seconds,
            "lookup_keys_per_second": self.lookup_keys_per_second,
            "topology_seconds": self.topology_seconds,
            "items_moved": self.items_moved,
            "partitions_moved": self.partitions_moved,
            "migrations": self.migrations,
            "migration_items_per_second": self.migration_items_per_second,
            "max_event_items_moved": self.max_event_items_moved,
            "mean_event_items_moved": self.mean_event_items_moved,
            "conservation_checks": self.conservation_checks,
            "final_items": self.final_items,
            "final_replica_items": self.final_replica_items,
            "n_snodes": self.n_snodes,
            "n_vnodes": self.n_vnodes,
            "n_partitions": self.n_partitions,
            "sigma_qv": self.sigma_qv,
            "sigma_qn": self.sigma_qn,
            "sigma_items_vnode": self.sigma_items_vnode,
            "sigma_items_snode": self.sigma_items_snode,
            "max_mean_items_snode": self.max_mean_items_snode,
        }
        if include_events:
            out["events"] = [
                {
                    "kind": o.kind,
                    "detail": o.detail,
                    "seconds": o.seconds,
                    "items_moved": o.items_moved,
                    "partitions_moved": o.partitions_moved,
                    "applied": o.applied,
                    "note": o.note,
                }
                for o in self.outcomes
            ]
        return out

    def as_rows(self) -> List[List[str]]:
        """Property/value rows for :func:`repro.report.format_table`."""
        return [
            ["scenario", self.name],
            ["approach", self.approach],
            ["replication factor", str(self.replication_factor)],
            ["topology events", f"{self.n_events} ({self.events_applied} applied, "
                                f"{self.events_skipped} skipped)"],
            ["event mix", f"{self.joins} joins / {self.leaves} leaves / "
                          f"{self.enrollment_changes} enrollment changes / "
                          f"{self.crashes} crashes / {self.rebalances} rebalances / "
                          f"{self.restarts} restarts"],
            ["items lost to crashes", f"{self.items_lost:,}"],
            ["replica rows rebuilt", f"{self.replica_rows_rebuilt:,}"],
            ["keys loaded", f"{self.keys_loaded:,}"],
            ["load keys/s", f"{self.load_keys_per_second:,.0f}"],
            ["lookups issued", f"{self.lookups_issued:,}"],
            ["lookup keys/s", f"{self.lookup_keys_per_second:,.0f}"],
            ["items moved", f"{self.items_moved:,} over {self.partitions_moved:,} "
                            f"partition handovers"],
            ["migration items/s", f"{self.migration_items_per_second:,.0f}"],
            ["max/mean items per event", f"{self.max_event_items_moved:,} / "
                                         f"{self.mean_event_items_moved:,.0f}"],
            ["conservation checks", f"{self.conservation_checks} passed"],
            ["final items", f"{self.final_items:,} (+{self.final_replica_items:,} "
                            f"replica rows)"],
            ["final topology", f"{self.n_snodes} snodes, {self.n_vnodes} vnodes, "
                               f"{self.n_partitions} partitions"],
            ["sigma(Qv)", f"{self.sigma_qv * 100:.2f}%"],
            ["sigma(Qn)", f"{self.sigma_qn * 100:.2f}%"],
            ["sigma items/vnode", f"{self.sigma_items_vnode * 100:.2f}%"],
            ["sigma items/snode", f"{self.sigma_items_snode * 100:.2f}%"],
            ["max/mean items per snode", f"{self.max_mean_items_snode:.2f}"],
        ]


class ChurnEngine:
    """Replay a churn trace against a live DHT, checking conservation."""

    def __init__(self, spec: ChurnSpec, trace: Optional[Sequence[ChurnEvent]] = None):
        self.spec = spec
        self.trace: List[ChurnEvent] = (
            list(trace) if trace is not None else make_churn_trace(spec)
        )

    # -- construction ---------------------------------------------------------

    def build_dht(self) -> BaseDHT:
        """Enroll the initial cluster described by the spec."""
        spec = self.spec
        return build_cluster(
            spec.approach,
            spec.n_snodes,
            spec.vnodes_per_snode,
            pmin=spec.pmin,
            vmin=spec.vmin,
            replication_factor=spec.replication_factor,
            seed=spec.seed,
            data_dir=spec.data_dir,
            workers=spec.workers,
        )

    def make_keys(self) -> Union[np.ndarray, List[str]]:
        """The distinct key population loaded over the trace."""
        spec = self.spec
        if spec.workload == "ids":
            return id_keys(spec.n_keys, rng=spec.seed)
        if spec.workload == "zipf":
            return zipf_id_keys(
                spec.n_keys,
                exponent=spec.zipf_exponent,
                n_ranges=spec.zipf_ranges,
                rng=spec.seed,
            )
        return uniform_keys(spec.n_keys, rng=spec.seed)

    # -- execution ------------------------------------------------------------

    def run(self, dht: Optional[BaseDHT] = None, deep_verify: bool = True) -> ChurnReport:
        """Replay the trace; raise :class:`ReproError` if items are not conserved.

        Conservation is **replication-aware**: it is judged on the *logical*
        item count (primary rows, :meth:`~repro.core.storage.DHTStorage.fast_primary_count`
        — identical to the historical ``fast_item_count`` check when
        ``replication_factor == 1``), so the physical row count is free to
        change when placement legitimately gains or loses replica ranks.
        Non-crash topology events must conserve items exactly; a crash may
        lose items only when no replica survived — with
        ``replication_factor >= 2`` any loss on a single-snode crash raises.
        When replication is on, replica/primary consistency is additionally
        verified after every topology event.

        ``deep_verify`` additionally runs the DHT's full invariant suite and
        an exact (merged-path) recount at the end of the run.

        A DHT built internally is closed before returning (releasing the
        multicore worker pool when ``spec.workers > 0``); a caller-provided
        DHT is left alone.
        """
        owns_dht = dht is None
        if dht is None:
            dht = self.build_dht()
        try:
            return self._run(dht, deep_verify)
        finally:
            if owns_dht:
                dht.close()

    def _run(self, dht: BaseDHT, deep_verify: bool) -> ChurnReport:
        spec = self.spec
        # Caller-supplied DHTs may already hold data; conservation is judged
        # against this baseline (merged count, so the final recount compares
        # like with like).
        initial_items = dht.storage.total_items()
        keys = self.make_keys()
        key_column = keys if isinstance(keys, np.ndarray) else np.asarray(keys, dtype=object)
        read_rng = np.random.default_rng(spec.seed + 1)

        outcomes: List[EventOutcome] = []
        loaded = 0
        load_seconds = 0.0
        lookups = 0
        lookup_seconds = 0.0
        topology_seconds = 0.0
        conservation_checks = 0
        applied = skipped = joins = leaves = enrollment_changes = crashes = 0
        rebalances = restarts = 0
        items_lost = 0
        max_event_items = 0
        stats = dht.storage.stats
        base_items, base_partitions, base_migrations = (
            stats.items_moved, stats.partitions_moved, stats.migrations,
        )
        replication = dht.storage.replication
        base_rebuilt = replication.rows_restored + replication.rows_refilled

        for event in self.trace:
            if event.kind == "load":
                chunk = keys[event.lo : event.hi]
                t0 = time.perf_counter()
                loaded += dht.bulk_load(chunk)
                dt = time.perf_counter() - t0
                load_seconds += dt
                outcomes.append(EventOutcome("load", event.describe(), dt))
            elif event.kind == "lookup":
                picks = read_rng.integers(0, event.hi, size=event.n_reads)
                chunk = key_column[picks]
                t0 = time.perf_counter()
                batch = dht.lookup_many(chunk)
                dt = time.perf_counter() - t0
                lookup_seconds += dt
                lookups += len(batch)
                outcomes.append(EventOutcome("lookup", event.describe(), dt))
            else:
                before = dht.storage.fast_primary_count()
                items_before = stats.items_moved
                partitions_before = stats.partitions_moved
                note = ""
                event_applied = True
                t0 = time.perf_counter()
                try:
                    note = self._apply_topology(dht, event) or ""
                except ReproError as exc:
                    event_applied = False
                    note = str(exc)
                dt = time.perf_counter() - t0
                topology_seconds += dt
                after = dht.storage.fast_primary_count()
                conservation_checks += 1
                if event.kind in ("snode_crash", "snode_restart"):
                    lost = before - after
                    if lost < 0:
                        raise ReproError(
                            f"churn event '{event.describe()}' created items: "
                            f"{before} before, {after} after"
                        )
                    if lost and spec.replication_factor > 1:
                        raise ReproError(
                            f"churn event '{event.describe()}' lost {lost} items "
                            f"despite replication_factor="
                            f"{spec.replication_factor} (recovery should have "
                            f"rebuilt them from surviving replicas)"
                        )
                    if (
                        lost
                        and event.kind == "snode_restart"
                        and dht.storage.durable is not None
                    ):
                        raise ReproError(
                            f"churn event '{event.describe()}' lost {lost} items "
                            f"despite the durable tier (WAL replay should have "
                            f"recovered every acknowledged write)"
                        )
                    items_lost += lost
                elif after != before:
                    raise ReproError(
                        f"churn event '{event.describe()}' broke item conservation: "
                        f"{before} items before, {after} after"
                    )
                if spec.replication_factor > 1:
                    dht.verify_replication()
                moved = stats.items_moved - items_before
                max_event_items = max(max_event_items, moved)
                if event_applied:
                    applied += 1
                    joins += event.kind == "snode_join"
                    leaves += event.kind == "snode_leave"
                    enrollment_changes += event.kind == "enrollment_change"
                    crashes += event.kind == "snode_crash"
                    rebalances += event.kind == "rebalance"
                    restarts += event.kind == "snode_restart"
                else:
                    skipped += 1
                outcomes.append(
                    EventOutcome(
                        event.kind,
                        event.describe(),
                        dt,
                        items_moved=moved,
                        partitions_moved=stats.partitions_moved - partitions_before,
                        applied=event_applied,
                        note=note,
                    )
                )

        if deep_verify:
            dht.check_invariants()
            if spec.replication_factor > 1:
                dht.verify_replication()
            final_items = dht.storage.total_items()
            if final_items != initial_items + loaded - items_lost:
                raise ReproError(
                    f"churn run lost data: {initial_items} items before the trace "
                    f"plus {loaded} loaded distinct keys minus {items_lost} lost "
                    f"to unreplicated crashes, but {final_items} remain"
                )
        else:
            final_items = dht.storage.fast_primary_count()
        item_loads = item_load_stats(dht)

        return ChurnReport(
            name=spec.name,
            approach=spec.approach,
            replication_factor=spec.replication_factor,
            n_events=applied + skipped,
            events_applied=applied,
            events_skipped=skipped,
            joins=joins,
            leaves=leaves,
            enrollment_changes=enrollment_changes,
            crashes=crashes,
            rebalances=rebalances,
            restarts=restarts,
            items_lost=items_lost,
            replica_rows_rebuilt=(
                replication.rows_restored + replication.rows_refilled - base_rebuilt
            ),
            keys_loaded=loaded,
            load_seconds=load_seconds,
            lookups_issued=lookups,
            lookup_seconds=lookup_seconds,
            topology_seconds=topology_seconds,
            items_moved=stats.items_moved - base_items,
            partitions_moved=stats.partitions_moved - base_partitions,
            migrations=stats.migrations - base_migrations,
            max_event_items_moved=max_event_items,
            conservation_checks=conservation_checks,
            final_items=final_items,
            final_replica_items=dht.storage.fast_replica_count(),
            n_snodes=dht.n_snodes,
            n_vnodes=dht.n_vnodes,
            n_partitions=dht.total_partitions,
            sigma_qv=dht.sigma_qv(),
            sigma_qn=dht.sigma_qn(),
            sigma_items_vnode=item_loads.vnodes.sigma,
            sigma_items_snode=item_loads.snodes.sigma,
            max_mean_items_snode=item_loads.snodes.max_over_mean,
            outcomes=outcomes,
        )

    def _apply_topology(self, dht: BaseDHT, event: ChurnEvent) -> Optional[str]:
        """Apply one topology event to the live DHT.

        Returns an optional note for the outcome row (crashes report vnodes
        the model refused to drop; those stay enrolled with recovered data).
        """
        return apply_topology_event(dht, event).note or None


def run_churn(spec: ChurnSpec) -> ChurnReport:
    """Convenience: build the engine for ``spec`` and run it."""
    return ChurnEngine(spec).run()
