"""Workload generators: arrival schedules, key workloads and node profiles.

The paper's evaluation only needs the simplest workload (1024 consecutive
vnode creations on homogeneous nodes with uniform keys), but a usable
library also needs the workloads the introduction motivates: heterogeneous
cluster nodes (different hardware generations, specialized nodes), dynamic
enrollment changes and skewed key popularity.  All of those live here and
are exercised by the examples and the ablation benchmarks.
"""

from repro.workloads.arrivals import (
    ArrivalEvent,
    ChurnSchedule,
    ConsecutiveCreations,
    PoissonArrivals,
    StaggeredBatches,
)
from repro.workloads.keys import (
    KeyWorkload,
    id_keys,
    sequential_keys,
    uniform_keys,
    zipf_id_keys,
    zipf_keys,
)
from repro.workloads.heterogeneity import (
    CapacityProfile,
    NodeSpec,
    enrollment_from_capacity,
)
from repro.workloads.driver import (
    ScenarioDriver,
    ScenarioReport,
    ScenarioSpec,
    build_cluster,
    builtin_scenarios,
    run_scenarios,
)
from repro.workloads.churn import (
    ChurnEngine,
    ChurnEvent,
    ChurnReport,
    ChurnSpec,
    make_churn_trace,
    run_churn,
)
from repro.workloads.rebalance_bench import (
    RebalanceBenchReport,
    RebalanceBenchSpec,
    run_rebalance_bench,
)

__all__ = [
    "ArrivalEvent",
    "ConsecutiveCreations",
    "StaggeredBatches",
    "PoissonArrivals",
    "ChurnSchedule",
    "KeyWorkload",
    "uniform_keys",
    "zipf_keys",
    "zipf_id_keys",
    "sequential_keys",
    "id_keys",
    "ScenarioSpec",
    "ScenarioReport",
    "ScenarioDriver",
    "build_cluster",
    "builtin_scenarios",
    "run_scenarios",
    "ChurnSpec",
    "ChurnEvent",
    "ChurnEngine",
    "ChurnReport",
    "make_churn_trace",
    "run_churn",
    "RebalanceBenchSpec",
    "RebalanceBenchReport",
    "run_rebalance_bench",
    "NodeSpec",
    "CapacityProfile",
    "enrollment_from_capacity",
]
