"""Heterogeneous cluster profiles and enrollment-level derivation.

The whole motivation of the paper's model (section 1) is that cluster nodes
may be heterogeneous — machines from different generations coexist, some
nodes are specialized — and that the share of the DHT handled by each node
should follow the computational resources it enrolls.  This module captures
node capacities and converts them into enrollment levels (vnode counts),
which is how the model expresses heterogeneity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class NodeSpec:
    """Capacity description of one cluster node.

    The *capacity score* is a single scalar combining the resources relevant
    to DHT hosting; the default weights emphasise storage and memory (a DHT
    is primarily a storage service) with CPU as a tie-breaker.
    """

    name: str
    cpu_cores: int = 4
    memory_gb: float = 8.0
    storage_gb: float = 200.0
    relative_performance: float = 1.0

    def __post_init__(self) -> None:
        if self.cpu_cores < 1:
            raise ValueError("cpu_cores must be >= 1")
        if self.memory_gb <= 0 or self.storage_gb <= 0:
            raise ValueError("memory_gb and storage_gb must be positive")
        if self.relative_performance <= 0:
            raise ValueError("relative_performance must be positive")

    def capacity_score(self) -> float:
        """Scalar capacity used to derive the node's enrollment level."""
        return (
            0.25 * self.cpu_cores
            + 0.35 * self.memory_gb / 8.0
            + 0.40 * self.storage_gb / 200.0
        ) * self.relative_performance


@dataclass
class CapacityProfile:
    """A set of cluster nodes with their capacities."""

    nodes: List[NodeSpec] = field(default_factory=list)

    # -- constructors -----------------------------------------------------------

    @classmethod
    def homogeneous(cls, n: int, **spec_kwargs) -> "CapacityProfile":
        """``n`` identical nodes (the configuration of the paper's figure 9)."""
        if n < 1:
            raise ValueError("n must be >= 1")
        return cls([NodeSpec(name=f"node-{i:03d}", **spec_kwargs) for i in range(n)])

    @classmethod
    def generations(
        cls, n: int, tiers: Optional[Sequence[Dict]] = None, rng: RngLike = None
    ) -> "CapacityProfile":
        """Nodes drawn from hardware generations of increasing capacity.

        The default tiers model three procurement rounds: old nodes (2 cores,
        4 GB, 100 GB), current nodes (4 cores, 8 GB, 200 GB) and new nodes
        (8 cores, 32 GB, 800 GB) — the "economical reasons" scenario of the
        paper's introduction.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        gen = ensure_rng(rng)
        if tiers is None:
            tiers = [
                {"cpu_cores": 2, "memory_gb": 4.0, "storage_gb": 100.0},
                {"cpu_cores": 4, "memory_gb": 8.0, "storage_gb": 200.0},
                {"cpu_cores": 8, "memory_gb": 32.0, "storage_gb": 800.0},
            ]
        choices = gen.integers(0, len(tiers), size=n)
        nodes = [
            NodeSpec(name=f"node-{i:03d}", **tiers[int(c)]) for i, c in enumerate(choices)
        ]
        return cls(nodes)

    # -- queries -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def names(self) -> List[str]:
        """Node names, in declaration order."""
        return [n.name for n in self.nodes]

    def capacity_scores(self) -> Dict[str, float]:
        """Capacity score per node."""
        return {n.name: n.capacity_score() for n in self.nodes}

    def total_capacity(self) -> float:
        """Sum of all capacity scores."""
        return float(sum(n.capacity_score() for n in self.nodes))

    def relative_weights(self) -> Dict[str, float]:
        """Capacity scores normalized so the *average* node has weight 1.

        These weights feed the weighted Consistent Hashing baseline and the
        enrollment derivation below.
        """
        scores = self.capacity_scores()
        mean = float(np.mean(list(scores.values()))) if scores else 0.0
        if mean == 0:
            return {name: 1.0 for name in scores}
        return {name: score / mean for name, score in scores.items()}

    def enrollments(self, base_vnodes: int = 4) -> Dict[str, int]:
        """Vnodes each node should contribute (``base_vnodes`` for an average node)."""
        return {
            name: enrollment_from_capacity(weight, base_vnodes)
            for name, weight in self.relative_weights().items()
        }


def enrollment_from_capacity(relative_weight: float, base_vnodes: int = 4) -> int:
    """Enrollment level (vnode count) for a node of the given relative capacity.

    An average node (weight 1.0) contributes ``base_vnodes`` vnodes; other
    nodes contribute proportionally, with a floor of one vnode so every
    enrolled node participates.
    """
    if relative_weight <= 0:
        raise ValueError("relative_weight must be positive")
    if base_vnodes < 1:
        raise ValueError("base_vnodes must be >= 1")
    return max(1, int(round(relative_weight * base_vnodes)))
