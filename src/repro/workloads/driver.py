"""Bulk scenario driver: replay key-arrival traces against a live DHT.

The paper's evaluation stops at balance quality; a production-scale DHT also
has to *serve* the keys it balances.  This driver closes that gap: it builds
a DHT from a declarative :class:`ScenarioSpec`, replays a key trace through
the batch API (:meth:`~repro.core.base.BaseDHT.bulk_load` /
:meth:`~repro.core.base.BaseDHT.lookup_many`) in bounded chunks, and reports
throughput together with the paper's balance metrics — so a million-key run
answers both "how fast" and "how balanced" in one go.

Three trace families are built in (:func:`builtin_scenarios`):

* ``ids`` — 64-bit integer ids on a homogeneous cluster, the fastest path
  (vectorized SplitMix64 hashing end to end);
* ``uniform`` — uniform string keys, the paper's no-hot-spot assumption;
* ``zipf`` — a Zipf-skewed read trace over a loaded object population
  (hot spots, which the paper leaves to future work);

plus a ``heterogeneous`` variant that enrolls capacity-weighted snodes via
:func:`~repro.workloads.heterogeneity.enrollment_from_capacity`.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core import DHTConfig, DurabilityConfig, GlobalDHT, LocalDHT, ParallelConfig
from repro.core.base import BaseDHT
from repro.workloads.heterogeneity import enrollment_from_capacity
from repro.workloads.keys import id_keys, uniform_keys, zipf_keys

WORKLOADS = ("ids", "uniform", "zipf")
APPROACHES = ("local", "global")


def build_cluster(
    approach: str,
    n_snodes: int,
    vnodes_per_snode: int,
    capacities: Optional[Sequence[float]] = None,
    pmin: int = 32,
    vmin: int = 32,
    replication_factor: int = 1,
    seed: int = 0,
    data_dir: Optional[str] = None,
    workers: int = 0,
    parallel: Optional[ParallelConfig] = None,
) -> BaseDHT:
    """Enroll a cluster (homogeneous or capacity-weighted) for a scenario.

    Shared by the bulk scenario driver and the churn engine
    (:mod:`repro.workloads.churn`): builds the DHT for the requested
    approach (with ``replication_factor`` copies of every item), enrolls
    ``n_snodes`` snodes and grows each to its target enrollment
    (``vnodes_per_snode``, optionally scaled by the snode's relative
    capacity via :func:`~repro.workloads.heterogeneity.enrollment_from_capacity`).
    ``data_dir`` turns on the durable tier (WAL + checkpointed segments per
    primary vnode under that directory; see :mod:`repro.core.durability`).
    ``workers > 0`` enables the multicore bulk pipeline
    (:mod:`repro.parallel`) with that many worker processes; the caller is
    then responsible for :meth:`~repro.core.base.BaseDHT.close`.
    """
    if approach == "local":
        config = DHTConfig.for_local(
            pmin=pmin, vmin=vmin, replication_factor=replication_factor
        )
    elif approach == "global":
        config = DHTConfig.for_global(pmin=pmin, replication_factor=replication_factor)
    else:
        raise ValueError(f"approach must be one of {APPROACHES}, got {approach!r}")
    if data_dir is not None:
        config = config.with_(durability=DurabilityConfig(data_dir=data_dir))
    if parallel is not None:
        # Full control (worker count, min_batch, start method) for tests
        # and benchmarks; ``workers`` is the everyday shorthand.
        config = config.with_(parallel=parallel)
    elif workers > 0:
        config = config.with_(parallel=ParallelConfig(workers=workers))
    if approach == "local":
        dht: BaseDHT = LocalDHT(config, rng=seed)
    else:
        dht = GlobalDHT(config, rng=seed)
    snodes = dht.add_snodes(n_snodes)
    for i, snode in enumerate(snodes):
        if capacities is None:
            target = vnodes_per_snode
        else:
            target = enrollment_from_capacity(
                float(capacities[i]), base_vnodes=vnodes_per_snode
            )
        dht.set_enrollment(snode, target)
    return dht


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one bulk workload scenario."""

    #: Scenario name (shown in reports).
    name: str
    #: Trace family: ``"ids"``, ``"uniform"`` or ``"zipf"``.
    workload: str
    #: Number of distinct keys to load.
    n_keys: int
    #: DHT approach: ``"local"`` (grouped) or ``"global"``.
    approach: str = "local"
    #: Number of snodes to enroll.
    n_snodes: int = 8
    #: Vnodes per snode (base enrollment for heterogeneous clusters).
    vnodes_per_snode: int = 8
    #: Optional per-snode relative capacities; when given, snode ``i``
    #: enrolls ``enrollment_from_capacity(capacities[i], vnodes_per_snode)``
    #: vnodes (heterogeneous cluster).
    capacities: Optional[Sequence[float]] = None
    #: Zipf exponent for the ``"zipf"`` read trace.
    zipf_exponent: float = 1.2
    #: Lookups issued per loaded key (the read trace length factor).
    read_multiplier: float = 1.0
    #: Keys per bulk_load / lookup_many call (bounds peak memory).
    chunk_size: int = 250_000
    #: Model parameters (paper's recommended Pmin = Vmin = 32 by default).
    pmin: int = 32
    vmin: int = 32
    #: Master seed for key generation and victim-group selection.
    seed: int = 0
    #: Worker processes for the multicore bulk pipeline (0 = serial).
    workers: int = 0

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ValueError(f"workload must be one of {WORKLOADS}, got {self.workload!r}")
        if self.approach not in APPROACHES:
            raise ValueError(f"approach must be one of {APPROACHES}, got {self.approach!r}")
        if self.n_keys < 1:
            raise ValueError("n_keys must be >= 1")
        if self.n_snodes < 1 or self.vnodes_per_snode < 1:
            raise ValueError("n_snodes and vnodes_per_snode must be >= 1")
        if self.capacities is not None and len(self.capacities) != self.n_snodes:
            raise ValueError("capacities must have exactly n_snodes entries")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.read_multiplier < 0:
            raise ValueError("read_multiplier must be non-negative")
        if self.workers < 0:
            raise ValueError("workers must be non-negative")


@dataclass
class ScenarioReport:
    """Throughput and balance outcome of one scenario run."""

    name: str
    approach: str
    n_snodes: int
    n_vnodes: int
    n_partitions: int
    keys_loaded: int
    load_seconds: float
    lookups_issued: int
    lookup_seconds: float
    sigma_qv: float
    sigma_qn: float
    #: Largest per-snode share of stored items (fraction of the total).
    max_snode_share: float
    #: Worker processes the run was configured with (0 = serial pipeline).
    workers: int = 0
    #: Bulk-load mode actually taken: ``serial``, ``parallel`` or
    #: ``parallel-hash`` (see :class:`~repro.core.engine.storage.BulkLoadReport`).
    load_mode: str = "serial"
    #: Accumulated per-stage bulk-load seconds (across all chunks).
    hash_seconds: float = 0.0
    locate_seconds: float = 0.0
    group_seconds: float = 0.0
    ingest_seconds: float = 0.0
    replica_seconds: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (adds the derived throughput numbers)."""
        out = asdict(self)
        out["load_keys_per_second"] = self.load_keys_per_second
        out["lookup_keys_per_second"] = self.lookup_keys_per_second
        return out

    @property
    def load_keys_per_second(self) -> float:
        """Bulk-load throughput."""
        return self.keys_loaded / self.load_seconds if self.load_seconds > 0 else 0.0

    @property
    def lookup_keys_per_second(self) -> float:
        """Batch-lookup throughput."""
        return self.lookups_issued / self.lookup_seconds if self.lookup_seconds > 0 else 0.0

    def as_row(self) -> List[str]:
        """One table row (see :func:`repro.report.format_table`)."""
        return [
            self.name,
            self.approach,
            str(self.n_snodes),
            str(self.n_vnodes),
            f"{self.keys_loaded:,}",
            f"{self.load_keys_per_second:,.0f}",
            f"{self.lookup_keys_per_second:,.0f}",
            f"{self.sigma_qv * 100:.2f}%",
            f"{self.sigma_qn * 100:.2f}%",
            f"{self.max_snode_share * 100:.2f}%",
        ]

    #: Header matching :meth:`as_row`.
    ROW_HEADER = [
        "scenario",
        "approach",
        "snodes",
        "vnodes",
        "keys",
        "load keys/s",
        "lookup keys/s",
        "sigma(Qv)",
        "sigma(Qn)",
        "max snode share",
    ]


class ScenarioDriver:
    """Build the DHT described by a spec and replay its trace."""

    def __init__(self, spec: ScenarioSpec):
        self.spec = spec

    # -- construction ---------------------------------------------------------

    def build_dht(self) -> BaseDHT:
        """Enroll the scenario's cluster (homogeneous or capacity-weighted)."""
        spec = self.spec
        return build_cluster(
            spec.approach,
            spec.n_snodes,
            spec.vnodes_per_snode,
            capacities=spec.capacities,
            pmin=spec.pmin,
            vmin=spec.vmin,
            seed=spec.seed,
            workers=spec.workers,
        )

    def make_keys(self) -> Union[np.ndarray, List[str]]:
        """The distinct keys to load, per the spec's trace family."""
        spec = self.spec
        if spec.workload == "ids":
            return id_keys(spec.n_keys, rng=spec.seed)
        # Both uniform and zipf scenarios load a uniform key population;
        # zipf skews the *read* trace, not the stored population.
        if spec.workload == "zipf":
            return [f"obj:{i}" for i in range(spec.n_keys)]
        return uniform_keys(spec.n_keys, rng=spec.seed)

    def make_read_trace(self, keys: Union[np.ndarray, List[str]]) -> Union[np.ndarray, List[str]]:
        """The keys to look up, per the spec's trace family."""
        spec = self.spec
        n_reads = int(round(spec.n_keys * spec.read_multiplier))
        if n_reads == 0:
            return []
        if spec.workload == "zipf":
            return zipf_keys(
                n_reads, spec.n_keys, exponent=spec.zipf_exponent, rng=spec.seed + 1
            )
        picks = np.random.default_rng(spec.seed + 1).integers(0, len(keys), size=n_reads)
        if not isinstance(keys, np.ndarray):
            keys = np.asarray(keys, dtype=object)
        return keys[picks]

    # -- execution ------------------------------------------------------------

    def run(self, dht: Optional[BaseDHT] = None) -> ScenarioReport:
        """Build (unless given), load the trace in chunks and measure.

        A DHT built internally is closed before returning (releasing any
        multicore worker pool); a caller-provided DHT is left alone.
        """
        spec = self.spec
        owns_dht = dht is None
        if dht is None:
            dht = self.build_dht()

        try:
            keys = self.make_keys()
            load_seconds = 0.0
            loaded = 0
            load_mode = "serial"
            stage = {"hash": 0.0, "locate": 0.0, "group": 0.0, "ingest": 0.0, "replica": 0.0}
            for lo in range(0, len(keys), spec.chunk_size):
                chunk = keys[lo : lo + spec.chunk_size]
                t0 = time.perf_counter()
                report = dht.bulk_load_report(chunk)
                load_seconds += time.perf_counter() - t0
                loaded += report.stored
                if report.mode != "serial":
                    load_mode = report.mode
                stage["hash"] += report.hash_seconds
                stage["locate"] += report.locate_seconds
                stage["group"] += report.group_seconds
                stage["ingest"] += report.ingest_seconds
                stage["replica"] += report.replica_seconds

            trace = self.make_read_trace(keys)
            lookup_seconds = 0.0
            issued = 0
            for lo in range(0, len(trace), spec.chunk_size):
                chunk = trace[lo : lo + spec.chunk_size]
                t0 = time.perf_counter()
                batch = dht.lookup_many(chunk)
                lookup_seconds += time.perf_counter() - t0
                issued += len(batch)

            # Balance of the *stored data* across physical nodes.
            per_snode: Dict[Any, int] = {}
            for ref in dht.vnodes:
                per_snode[ref.snode] = per_snode.get(ref.snode, 0) + dht.storage.item_count(ref)
            total = sum(per_snode.values())
            max_share = max(per_snode.values()) / total if total else 0.0

            return ScenarioReport(
                name=spec.name,
                approach=spec.approach,
                n_snodes=dht.n_snodes,
                n_vnodes=dht.n_vnodes,
                n_partitions=dht.total_partitions,
                keys_loaded=loaded,
                load_seconds=load_seconds,
                lookups_issued=issued,
                lookup_seconds=lookup_seconds,
                sigma_qv=dht.sigma_qv(),
                sigma_qn=dht.sigma_qn(),
                max_snode_share=max_share,
                workers=spec.workers,
                load_mode=load_mode,
                hash_seconds=stage["hash"],
                locate_seconds=stage["locate"],
                group_seconds=stage["group"],
                ingest_seconds=stage["ingest"],
                replica_seconds=stage["replica"],
            )
        finally:
            if owns_dht:
                dht.close()


def builtin_scenarios(
    n_keys: int = 1_000_000, seed: int = 0, approach: str = "local"
) -> List[ScenarioSpec]:
    """The standard scenario suite replayed by ``repro bulk-bench``."""
    return [
        ScenarioSpec(name="ids", workload="ids", n_keys=n_keys, approach=approach, seed=seed),
        ScenarioSpec(
            name="uniform", workload="uniform", n_keys=n_keys, approach=approach, seed=seed
        ),
        ScenarioSpec(
            name="zipf",
            workload="zipf",
            n_keys=n_keys,
            approach=approach,
            zipf_exponent=1.2,
            seed=seed,
        ),
        ScenarioSpec(
            name="heterogeneous",
            workload="ids",
            n_keys=n_keys,
            approach=approach,
            n_snodes=8,
            vnodes_per_snode=4,
            capacities=(0.5, 0.5, 1.0, 1.0, 1.0, 2.0, 2.0, 4.0),
            seed=seed,
        ),
    ]


def run_scenarios(specs: Sequence[ScenarioSpec]) -> List[ScenarioReport]:
    """Run a list of scenarios back to back."""
    return [ScenarioDriver(spec).run() for spec in specs]
