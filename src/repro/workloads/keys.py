"""Key workload generators.

The paper assumes uniform data distributions and no hot spots (section 5);
besides that uniform workload we also provide Zipf-skewed and sequential key
generators, used by the examples and by the heterogeneity/storage ablations
to show how the DHT behaves outside the paper's assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.utils.rng import RngLike, ensure_rng


def uniform_keys(n: int, rng: RngLike = None, prefix: str = "key") -> List[str]:
    """``n`` distinct keys whose hashes are effectively uniform over the ring."""
    if n < 0:
        raise ValueError("n must be non-negative")
    gen = ensure_rng(rng)
    # Distinct random suffixes; the hash function provides the uniformity.
    suffixes = gen.integers(0, 2**62, size=n)
    return [f"{prefix}:{i}:{int(s)}" for i, s in enumerate(suffixes)]


def id_keys(n: int, rng: RngLike = None) -> np.ndarray:
    """``n`` distinct 64-bit integer ids as a ``uint64`` array.

    The id-style workload of the bulk API: integer keys stay in numpy end to
    end (vectorized SplitMix64 hashing, columnar storage segments), which is
    what makes million-key :meth:`~repro.core.base.BaseDHT.bulk_load` runs
    hash-bound rather than interpreter-bound.  Ids are drawn without
    replacement from ``[0, 2**63)``.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    gen = ensure_rng(rng)
    # Distinctness: random high 32 bits + sequential low bits would skew the
    # space; instead draw 63-bit values and resolve the (rare) collisions.
    ids = gen.integers(0, 2**63, size=n, dtype=np.int64).astype(np.uint64)
    if n:
        uniq = np.unique(ids)
        while uniq.size < n:
            extra = gen.integers(0, 2**63, size=n - uniq.size, dtype=np.int64).astype(np.uint64)
            uniq = np.unique(np.concatenate([uniq, extra]))
        ids = uniq
        gen.shuffle(ids)
    return ids


def sequential_keys(n: int, prefix: str = "item") -> List[str]:
    """``n`` sequential keys (``item:0``, ``item:1``, ...).

    Sequential names still hash uniformly, but they are reproducible without
    an RNG, which some tests and examples prefer.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    return [f"{prefix}:{i}" for i in range(n)]


def zipf_keys(
    n: int, n_distinct: int, exponent: float = 1.2, rng: RngLike = None, prefix: str = "obj"
) -> List[str]:
    """``n`` key *accesses* over ``n_distinct`` objects with Zipf popularity.

    Returns a list of length ``n`` where popular keys repeat — an access
    trace rather than a key set.  Used by the storage example to demonstrate
    hot-spot behaviour (which the paper explicitly leaves to future work).
    """
    if n < 0 or n_distinct < 1:
        raise ValueError("n must be non-negative and n_distinct >= 1")
    if exponent <= 0:
        raise ValueError("exponent must be strictly positive")
    gen = ensure_rng(rng)
    ranks = np.arange(1, n_distinct + 1, dtype=np.float64)
    probabilities = ranks**-exponent
    probabilities /= probabilities.sum()
    draws = gen.choice(n_distinct, size=n, p=probabilities)
    return [f"{prefix}:{int(d)}" for d in draws]


@dataclass
class KeyWorkload:
    """A reusable key workload: a set of keys plus deterministic values.

    Examples
    --------
    >>> wl = KeyWorkload.uniform(100, rng=5)
    >>> len(wl.keys)
    100
    >>> wl.value_for(wl.keys[0]).startswith("value-of:")
    True
    """

    keys: List[str]

    @classmethod
    def uniform(cls, n: int, rng: RngLike = None) -> "KeyWorkload":
        """Uniformly hashed keys (the paper's assumption)."""
        return cls(uniform_keys(n, rng))

    @classmethod
    def sequential(cls, n: int) -> "KeyWorkload":
        """Sequential keys (fully deterministic)."""
        return cls(sequential_keys(n))

    @classmethod
    def zipf(cls, n: int, n_distinct: int, exponent: float = 1.2, rng: RngLike = None) -> "KeyWorkload":
        """Zipf-skewed access trace."""
        return cls(zipf_keys(n, n_distinct, exponent, rng))

    @staticmethod
    def value_for(key: str) -> str:
        """Deterministic value derived from the key (easy to verify after migration)."""
        return f"value-of:{key}"

    def items(self) -> Iterator[tuple]:
        """Iterate over ``(key, value)`` pairs."""
        for key in self.keys:
            yield key, self.value_for(key)

    def __len__(self) -> int:
        return len(self.keys)
