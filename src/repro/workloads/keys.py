"""Key workload generators.

The paper assumes uniform data distributions and no hot spots (section 5);
besides that uniform workload we also provide Zipf-skewed and sequential key
generators, used by the examples and by the heterogeneity/storage ablations
to show how the DHT behaves outside the paper's assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.core.hashspace import splitmix64_inverse
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import is_power_of_two


def uniform_keys(n: int, rng: RngLike = None, prefix: str = "key") -> List[str]:
    """``n`` distinct keys whose hashes are effectively uniform over the ring."""
    if n < 0:
        raise ValueError("n must be non-negative")
    gen = ensure_rng(rng)
    # Distinct random suffixes; the hash function provides the uniformity.
    suffixes = gen.integers(0, 2**62, size=n)
    return [f"{prefix}:{i}:{int(s)}" for i, s in enumerate(suffixes)]


def id_keys(n: int, rng: RngLike = None) -> np.ndarray:
    """``n`` distinct 64-bit integer ids as a ``uint64`` array.

    The id-style workload of the bulk API: integer keys stay in numpy end to
    end (vectorized SplitMix64 hashing, columnar storage segments), which is
    what makes million-key :meth:`~repro.core.base.BaseDHT.bulk_load` runs
    hash-bound rather than interpreter-bound.  Ids are drawn without
    replacement from ``[0, 2**63)``.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    gen = ensure_rng(rng)
    # Distinctness: random high 32 bits + sequential low bits would skew the
    # space; instead draw 63-bit values and resolve the (rare) collisions.
    ids = gen.integers(0, 2**63, size=n, dtype=np.int64).astype(np.uint64)
    if n:
        uniq = np.unique(ids)
        while uniq.size < n:
            extra = gen.integers(0, 2**63, size=n - uniq.size, dtype=np.int64).astype(np.uint64)
            uniq = np.unique(np.concatenate([uniq, extra]))
        ids = uniq
        gen.shuffle(ids)
    return ids


def sequential_keys(n: int, prefix: str = "item") -> List[str]:
    """``n`` sequential keys (``item:0``, ``item:1``, ...).

    Sequential names still hash uniformly, but they are reproducible without
    an RNG, which some tests and examples prefer.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    return [f"{prefix}:{i}" for i in range(n)]


def zipf_keys(
    n: int, n_distinct: int, exponent: float = 1.2, rng: RngLike = None, prefix: str = "obj"
) -> List[str]:
    """``n`` key *accesses* over ``n_distinct`` objects with Zipf popularity.

    Returns a list of length ``n`` where popular keys repeat — an access
    trace rather than a key set.  Used by the storage example to demonstrate
    hot-spot behaviour (which the paper explicitly leaves to future work).
    """
    if n < 0 or n_distinct < 1:
        raise ValueError("n must be non-negative and n_distinct >= 1")
    if exponent <= 0:
        raise ValueError("exponent must be strictly positive")
    gen = ensure_rng(rng)
    ranks = np.arange(1, n_distinct + 1, dtype=np.float64)
    probabilities = ranks**-exponent
    probabilities /= probabilities.sum()
    draws = gen.choice(n_distinct, size=n, p=probabilities)
    return [f"{prefix}:{int(d)}" for d in draws]


def zipf_id_keys(
    n: int,
    bh: int = 32,
    exponent: float = 1.1,
    n_ranges: int = 4096,
    rng: RngLike = None,
) -> np.ndarray:
    """``n`` distinct integer keys whose *stored* load is Zipf-skewed on the ring.

    A uniform hash function turns any key population into uniform stored
    load, so skewing the keys themselves (as :func:`zipf_keys` does for the
    read trace) cannot produce hot *partitions*.  This generator works
    backwards instead: it slices the ``bh``-bit ring into ``n_ranges``
    equal ranges, draws each key's range with Zipf(``exponent``)
    probability (range order shuffled so hot ranges scatter over the
    ring), places the key's hash index uniformly inside the drawn range,
    and inverts the SplitMix64 finalizer
    (:func:`repro.core.hashspace.splitmix64_inverse`) to obtain a ``uint64``
    key that :meth:`~repro.core.hashspace.HashSpace.hash_keys` maps exactly
    there.

    The result is the skewed-load scenario the paper's count-only balance
    model cannot express: ``sigma(Pv)`` reports perfect balance while the
    per-snode *item* load is dominated by whichever vnodes own the hot
    ranges — the workload ``repro rebalance-bench`` feeds to
    :meth:`~repro.core.base.BaseDHT.rebalance_load`.

    ``n_ranges`` must be a power of two no larger than ``2**bh`` (ranges
    stay aligned with the model's binary partitions); ``bh`` must be at
    most 64 (integer keys hash through SplitMix64 only on 64-bit-or-smaller
    spaces).  Keys are distinct and returned in shuffled order.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if not (1 <= bh <= 64):
        raise ValueError(f"bh must be in [1, 64] for integer-key workloads, got {bh}")
    if n_ranges < 2 or not is_power_of_two(n_ranges) or n_ranges > (1 << bh):
        raise ValueError(
            f"n_ranges must be a power of two in [2, 2**bh], got {n_ranges} "
            f"(bh={bh}; a single range cannot carry any skew)"
        )
    if exponent <= 0:
        raise ValueError("exponent must be strictly positive")
    if n == 0:
        return np.empty(0, dtype=np.uint64)

    gen = ensure_rng(rng)
    ranks = np.arange(1, n_ranges + 1, dtype=np.float64)
    probabilities = ranks**-exponent
    probabilities /= probabilities.sum()
    # Scatter the popularity ranks over the ring so the hot ranges are not
    # all adjacent at index zero.
    placement = gen.permutation(n_ranges).astype(np.uint64)
    width = np.uint64((1 << bh) // n_ranges)
    high_bits = 64 - bh

    def draw(count: int) -> np.ndarray:
        ranges = placement[gen.choice(n_ranges, size=count, p=probabilities)]
        with np.errstate(over="ignore"):
            index = ranges * width
            if int(width) > 1:
                index = index + gen.integers(0, int(width), size=count, dtype=np.uint64)
            if high_bits:
                # The hash masks to the low bh bits; the high bits are free
                # entropy that keeps the inverted keys distinct.
                upper = gen.integers(0, 1 << high_bits, size=count, dtype=np.uint64)
                index = index | (upper << np.uint64(bh))
        return splitmix64_inverse(index)

    keys = np.unique(draw(n))
    while keys.size < n:
        keys = np.unique(np.concatenate([keys, draw(n - keys.size)]))
    gen.shuffle(keys)
    return keys


@dataclass
class KeyWorkload:
    """A reusable key workload: a set of keys plus deterministic values.

    Examples
    --------
    >>> wl = KeyWorkload.uniform(100, rng=5)
    >>> len(wl.keys)
    100
    >>> wl.value_for(wl.keys[0]).startswith("value-of:")
    True
    """

    keys: List[str]

    @classmethod
    def uniform(cls, n: int, rng: RngLike = None) -> "KeyWorkload":
        """Uniformly hashed keys (the paper's assumption)."""
        return cls(uniform_keys(n, rng))

    @classmethod
    def sequential(cls, n: int) -> "KeyWorkload":
        """Sequential keys (fully deterministic)."""
        return cls(sequential_keys(n))

    @classmethod
    def zipf(cls, n: int, n_distinct: int, exponent: float = 1.2, rng: RngLike = None) -> "KeyWorkload":
        """Zipf-skewed access trace."""
        return cls(zipf_keys(n, n_distinct, exponent, rng))

    @staticmethod
    def value_for(key: str) -> str:
        """Deterministic value derived from the key (easy to verify after migration)."""
        return f"value-of:{key}"

    def items(self) -> Iterator[tuple]:
        """Iterate over ``(key, value)`` pairs."""
        for key in self.keys:
            yield key, self.value_for(key)

    def __len__(self) -> int:
        return len(self.keys)
