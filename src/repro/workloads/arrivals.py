"""Arrival schedules: when vnodes are created (or removed) and by which snode.

A schedule produces a sequence of :class:`ArrivalEvent` items, each with a
logical timestamp.  The balance simulators only care about the order; the
cluster protocol simulator (:mod:`repro.cluster`) also uses the timestamps
to model concurrency (the whole point of the local approach is that
creations in different groups can overlap in time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Literal, Optional, Sequence

import numpy as np

from repro.utils.rng import RngLike, ensure_rng

EventKind = Literal["create", "remove"]


@dataclass(frozen=True)
class ArrivalEvent:
    """One workload event: a vnode creation or removal request.

    Attributes
    ----------
    time:
        Logical arrival time (seconds; only relative values matter).
    snode:
        Index of the snode issuing the request (round-robin by default).
    kind:
        ``"create"`` or ``"remove"``.
    """

    time: float
    snode: int
    kind: EventKind = "create"


class ConsecutiveCreations:
    """The paper's workload: ``n`` creations issued back to back (section 4).

    All events share time 0 spacing (``interval`` seconds apart) and are
    assigned to snodes round-robin.
    """

    def __init__(self, n: int, n_snodes: int = 1, interval: float = 0.0):
        if n < 1:
            raise ValueError("n must be >= 1")
        if n_snodes < 1:
            raise ValueError("n_snodes must be >= 1")
        if interval < 0:
            raise ValueError("interval must be non-negative")
        self.n = n
        self.n_snodes = n_snodes
        self.interval = interval

    def events(self) -> List[ArrivalEvent]:
        """Materialize the schedule."""
        return [
            ArrivalEvent(time=i * self.interval, snode=i % self.n_snodes, kind="create")
            for i in range(self.n)
        ]

    def __iter__(self) -> Iterator[ArrivalEvent]:
        return iter(self.events())

    def __len__(self) -> int:
        return self.n


class StaggeredBatches:
    """Creations arriving in bursts: ``batch_size`` requests every ``gap`` seconds.

    Models a cluster expansion where several nodes enroll simultaneously —
    the scenario where the serialization of the global approach hurts most.
    """

    def __init__(self, n_batches: int, batch_size: int, gap: float, n_snodes: int = 1):
        if n_batches < 1 or batch_size < 1:
            raise ValueError("n_batches and batch_size must be >= 1")
        if gap < 0:
            raise ValueError("gap must be non-negative")
        if n_snodes < 1:
            raise ValueError("n_snodes must be >= 1")
        self.n_batches = n_batches
        self.batch_size = batch_size
        self.gap = gap
        self.n_snodes = n_snodes

    def events(self) -> List[ArrivalEvent]:
        """Materialize the schedule."""
        out: List[ArrivalEvent] = []
        counter = 0
        for batch in range(self.n_batches):
            for _ in range(self.batch_size):
                out.append(
                    ArrivalEvent(
                        time=batch * self.gap,
                        snode=counter % self.n_snodes,
                        kind="create",
                    )
                )
                counter += 1
        return out

    def __iter__(self) -> Iterator[ArrivalEvent]:
        return iter(self.events())

    def __len__(self) -> int:
        return self.n_batches * self.batch_size


class PoissonArrivals:
    """Creations arriving as a Poisson process of the given rate (events/second)."""

    def __init__(self, n: int, rate: float, n_snodes: int = 1, rng: RngLike = None):
        if n < 1:
            raise ValueError("n must be >= 1")
        if rate <= 0:
            raise ValueError("rate must be strictly positive")
        if n_snodes < 1:
            raise ValueError("n_snodes must be >= 1")
        self.n = n
        self.rate = rate
        self.n_snodes = n_snodes
        self.rng = ensure_rng(rng)

    def events(self) -> List[ArrivalEvent]:
        """Materialize the schedule (one draw per call, seeded by the rng)."""
        gaps = self.rng.exponential(1.0 / self.rate, size=self.n)
        times = np.cumsum(gaps)
        snodes = self.rng.integers(0, self.n_snodes, size=self.n)
        return [
            ArrivalEvent(time=float(t), snode=int(s), kind="create")
            for t, s in zip(times, snodes)
        ]

    def __iter__(self) -> Iterator[ArrivalEvent]:
        return iter(self.events())

    def __len__(self) -> int:
        return self.n


class ChurnSchedule:
    """A mix of creations and removals (dynamic enrollment, section 2.1.2).

    Starts with ``initial`` creations, then alternates batches of creations
    and removals so the DHT keeps a roughly constant size while entities come
    and go — the scenario the model's dynamic balancing exists for.
    """

    def __init__(
        self,
        initial: int,
        churn_events: int,
        remove_fraction: float = 0.5,
        n_snodes: int = 1,
        rng: RngLike = None,
    ):
        if initial < 1:
            raise ValueError("initial must be >= 1")
        if churn_events < 0:
            raise ValueError("churn_events must be non-negative")
        if not (0.0 <= remove_fraction <= 1.0):
            raise ValueError("remove_fraction must be in [0, 1]")
        if n_snodes < 1:
            raise ValueError("n_snodes must be >= 1")
        self.initial = initial
        self.churn_events = churn_events
        self.remove_fraction = remove_fraction
        self.n_snodes = n_snodes
        self.rng = ensure_rng(rng)

    def events(self) -> List[ArrivalEvent]:
        """Materialize the schedule.

        Removals are never scheduled while the running balance of
        creations-minus-removals would drop below 2 vnodes, so the schedule
        is always applicable.
        """
        out: List[ArrivalEvent] = []
        alive = 0
        for i in range(self.initial):
            out.append(ArrivalEvent(time=float(i), snode=i % self.n_snodes, kind="create"))
            alive += 1
        time = float(self.initial)
        for _ in range(self.churn_events):
            remove = self.rng.random() < self.remove_fraction and alive > 2
            kind: EventKind = "remove" if remove else "create"
            out.append(
                ArrivalEvent(
                    time=time, snode=int(self.rng.integers(0, self.n_snodes)), kind=kind
                )
            )
            alive += -1 if remove else 1
            time += 1.0
        return out

    def __iter__(self) -> Iterator[ArrivalEvent]:
        return iter(self.events())

    def __len__(self) -> int:
        return self.initial + self.churn_events
