"""Reference models the paper compares against.

The only baseline used in the paper's evaluation is Consistent Hashing
(Karger et al., STOC 1997), with its virtual-server extension for
heterogeneous nodes (Dabek et al., SOSP 2001 — CFS).  Both the object model
(:class:`~repro.baselines.consistent_hashing.ConsistentHashRing`, a usable
hash ring with lookups) and a fast metric-only simulator
(:class:`repro.sim.ConsistentHashingSimulator`) are provided.
"""

from repro.baselines.consistent_hashing import ConsistentHashRing, RingEntry

__all__ = ["ConsistentHashRing", "RingEntry"]
