"""Consistent Hashing reference model (section 4.3 of the paper).

This is a full, usable hash ring — not just a metric simulator:

* physical nodes join with ``k`` virtual servers (ring points) each, or with
  a node-specific count derived from a weight (the CFS-style heterogeneous
  variant the paper cites);
* keys are hashed to the unit ring and routed to the first virtual server
  clockwise from the key (its *successor*);
* nodes can leave, releasing their arcs to the remaining successors;
* per-node quotas ``Q_n`` and the balance metric ``sigma-bar(Qn)`` are
  available for direct comparison with the paper's model.

The implementation keeps the ring as two parallel sorted lists (positions
and owners) and uses :mod:`bisect` for ``O(log M)`` lookups, which is plenty
for the cluster-scale node counts of the paper (up to 1024 nodes).
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

import numpy as np

from repro.core.errors import EmptyDHTError, UnknownSnodeError
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class RingEntry:
    """One virtual server: a position on the unit ring owned by a node."""

    position: float
    node: str


class ConsistentHashRing:
    """A Consistent Hashing ring with virtual servers and weighted nodes.

    Parameters
    ----------
    partitions_per_node:
        Default number of virtual servers placed per node (``k``).  The
        paper's comparison uses 32 and 64.
    rng:
        Seed or generator for the random virtual-server positions.

    Examples
    --------
    >>> ring = ConsistentHashRing(partitions_per_node=16, rng=1)
    >>> ring.add_node("node-a")
    >>> ring.add_node("node-b", weight=2.0)   # twice the virtual servers
    >>> owner = ring.lookup("some-key")
    >>> owner in {"node-a", "node-b"}
    True
    >>> abs(sum(ring.node_quotas().values()) - 1.0) < 1e-9
    True
    """

    def __init__(self, partitions_per_node: int = 32, rng: RngLike = None):
        if partitions_per_node < 1:
            raise ValueError("partitions_per_node must be >= 1")
        self.k = int(partitions_per_node)
        self.rng = ensure_rng(rng)
        self._positions: List[float] = []
        self._owners: List[str] = []
        self._nodes: Dict[str, int] = {}  # node -> number of virtual servers

    # ------------------------------------------------------------------ nodes

    @property
    def n_nodes(self) -> int:
        """Number of physical nodes currently in the ring."""
        return len(self._nodes)

    @property
    def n_virtual_servers(self) -> int:
        """Total number of virtual servers (ring points)."""
        return len(self._positions)

    def nodes(self) -> List[str]:
        """Names of the nodes currently in the ring."""
        return list(self._nodes)

    def add_node(self, node: str, weight: float = 1.0) -> None:
        """Join a node, placing ``round(k * weight)`` virtual servers."""
        if node in self._nodes:
            raise ValueError(f"node {node!r} already in the ring")
        if weight <= 0:
            raise ValueError("weight must be strictly positive")
        n_points = max(1, int(round(self.k * weight)))
        for _ in range(n_points):
            position = float(self.rng.random())
            index = bisect.bisect_left(self._positions, position)
            self._positions.insert(index, position)
            self._owners.insert(index, node)
        self._nodes[node] = n_points

    def remove_node(self, node: str) -> None:
        """Remove a node; its arcs fall to the successors of its points."""
        if node not in self._nodes:
            raise UnknownSnodeError(f"node {node!r} not in the ring")
        keep = [i for i, owner in enumerate(self._owners) if owner != node]
        self._positions = [self._positions[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]
        del self._nodes[node]

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # ------------------------------------------------------------------ lookups

    @staticmethod
    def hash_key(key: Hashable) -> float:
        """Hash an application key to a position on the unit ring."""
        data = repr(key).encode("utf-8")
        digest = hashlib.blake2b(data, digest_size=8).digest()
        return int.from_bytes(digest, "big") / float(1 << 64)

    def lookup_position(self, position: float) -> str:
        """Owner of a ring position: the first virtual server clockwise."""
        if not self._positions:
            raise EmptyDHTError("the ring has no nodes")
        if not (0.0 <= position < 1.0):
            position = position % 1.0
        index = bisect.bisect_left(self._positions, position)
        if index == len(self._positions):
            index = 0  # wrap around
        return self._owners[index]

    def lookup(self, key: Hashable) -> str:
        """Node responsible for an application key."""
        return self.lookup_position(self.hash_key(key))

    # ------------------------------------------------------------------ balance

    def node_quotas(self) -> Dict[str, float]:
        """Fraction of the ring owned by each node (``Q_n``)."""
        quotas: Dict[str, float] = {node: 0.0 for node in self._nodes}
        if not self._positions:
            return quotas
        previous = self._positions[-1] - 1.0
        for position, owner in zip(self._positions, self._owners):
            quotas[owner] += position - previous
            previous = position
        return quotas

    def sigma_qn(self) -> float:
        """Relative standard deviation of node quotas (fraction, not %)."""
        quotas = np.array(list(self.node_quotas().values()), dtype=np.float64)
        if quotas.size == 0:
            return 0.0
        mean = quotas.mean()
        if mean == 0:
            return 0.0
        return float(quotas.std() / mean)

    def describe(self) -> Dict[str, object]:
        """Summary dict (for reports and examples)."""
        return {
            "nodes": self.n_nodes,
            "virtual_servers": self.n_virtual_servers,
            "partitions_per_node": self.k,
            "sigma_qn": self.sigma_qn(),
        }
