"""Incremental simulator of the Consistent Hashing reference model (section 4.3).

In Consistent Hashing [Karger et al. 1997] every physical node places ``k``
virtual servers at uniformly random positions of the unit ring; a virtual
server owns the arc between its predecessor point and itself, and the node's
quota ``Q_n`` is the total length of the arcs owned by its virtual servers.

The paper compares its local approach against CH with 32 and 64 partitions
per node (the number of partitions per vnode of its own model fluctuates
between ``Pmin = 32`` and ``Pmax = 64``), measuring ``sigma-bar(Qn)`` after
every node join from 1 to 1024 homogeneous nodes, averaged over 100 runs.

This simulator is incremental and vectorized: all cut points are drawn up
front; at every join the new node's points are merged into the sorted ring
(one :func:`numpy.insert` per join) and the per-node quotas are recomputed
with a :func:`numpy.bincount` over arc lengths, keeping a full 1024-node run
well under a second.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.sim.trace import CHTrace
from repro.utils.rng import RngLike, ensure_rng


class ConsistentHashingSimulator:
    """Simulate node joins under Consistent Hashing and track ``sigma-bar(Qn)``.

    Parameters
    ----------
    partitions_per_node:
        Number of virtual servers (ring points) per physical node, ``k``.
    rng:
        Seed or generator for the random ring positions.
    weights:
        Optional per-node weights for the heterogeneous variant (CFS-style):
        node ``i`` receives ``round(k * weights[i])`` virtual servers.  When
        omitted, all nodes are homogeneous (weight 1).

    Examples
    --------
    >>> from repro.sim import ConsistentHashingSimulator
    >>> sim = ConsistentHashingSimulator(partitions_per_node=32, rng=0)
    >>> trace = sim.run(64)
    >>> 0.0 < float(trace.sigma_qn[-1]) < 1.0
    True
    """

    def __init__(
        self,
        partitions_per_node: int = 32,
        rng: RngLike = None,
        weights: Optional[Sequence[float]] = None,
    ):
        if partitions_per_node < 1:
            raise ValueError("partitions_per_node must be >= 1")
        self.k = int(partitions_per_node)
        self.rng = ensure_rng(rng)
        self.weights = None if weights is None else np.asarray(weights, dtype=np.float64)
        if self.weights is not None and np.any(self.weights <= 0):
            raise ValueError("weights must be strictly positive")
        # Ring state: sorted cut points and, aligned with them, the owning node.
        self._points = np.empty(0, dtype=np.float64)
        self._owners = np.empty(0, dtype=np.int64)
        self.n_nodes = 0

    # ------------------------------------------------------------------ state

    def points_for_node(self, node: int) -> int:
        """Number of virtual servers the given node contributes."""
        if self.weights is None:
            return self.k
        if node >= len(self.weights):
            raise IndexError(
                f"node {node} has no weight (only {len(self.weights)} weights given)"
            )
        return max(1, int(round(self.k * float(self.weights[node]))))

    def node_quotas(self) -> np.ndarray:
        """Quota ``Q_n`` of every node currently in the ring."""
        if self.n_nodes == 0:
            return np.empty(0, dtype=np.float64)
        if len(self._points) == 0:
            return np.zeros(self.n_nodes, dtype=np.float64)
        # Arc owned by point i spans from point i-1 to point i (the first
        # point also owns the wrap-around arc from the last point).
        arcs = np.diff(self._points, prepend=self._points[-1] - 1.0)
        return np.bincount(self._owners, weights=arcs, minlength=self.n_nodes)

    def sigma_qn(self) -> float:
        """Relative standard deviation of node quotas (fraction, not %)."""
        quotas = self.node_quotas()
        if quotas.size == 0:
            return 0.0
        mean = quotas.mean()
        if mean == 0:
            return 0.0
        return float(quotas.std() / mean)

    # ------------------------------------------------------------------ dynamics

    def add_node(self) -> int:
        """Join one node: place its virtual servers on the ring.  Returns its id."""
        node = self.n_nodes
        n_points = self.points_for_node(node)
        new_points = np.sort(self.rng.random(n_points))
        positions = np.searchsorted(self._points, new_points)
        self._points = np.insert(self._points, positions, new_points)
        self._owners = np.insert(self._owners, positions, np.full(n_points, node))
        self.n_nodes += 1
        return node

    def run(self, n_nodes: int) -> CHTrace:
        """Join ``n_nodes`` nodes, measuring ``sigma-bar(Qn)`` after each join."""
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        sigma = np.empty(n_nodes, dtype=np.float64)
        for i in range(n_nodes):
            self.add_node()
            sigma[i] = self.sigma_qn()
        return CHTrace(
            n_nodes=np.arange(1, n_nodes + 1, dtype=np.int64),
            sigma_qn=sigma,
        )
