"""Fast, count-level simulators of the balancing dynamics.

The paper's evaluation (section 4) creates 1024 vnodes consecutively,
measures the balance metric after every creation and averages 100 runs per
configuration.  Doing that with the full entity model of :mod:`repro.core`
(which tracks every partition object, routing table and stored item) is
possible but needlessly slow; the balance metrics depend only on the
*partition counts per vnode* and the *splitlevel per group*.

The simulators in this package therefore track exactly that reduced state.
They implement the same algorithms (victim selection, improvement test,
split-all cascade, group split with random membership, quota-proportional
victim-group selection) and are cross-validated against the entity model by
the test suite, both algebraically (identical greedy-fill outcomes on the
same count multisets) and statistically (matching metric curves).
"""

from repro.sim.trace import BalanceTrace, CHTrace
from repro.sim.local import CreationRecord, LocalBalanceSimulator, greedy_fill
from repro.sim.global_ import GlobalBalanceSimulator
from repro.sim.ch import ConsistentHashingSimulator

__all__ = [
    "BalanceTrace",
    "CHTrace",
    "CreationRecord",
    "greedy_fill",
    "LocalBalanceSimulator",
    "GlobalBalanceSimulator",
    "ConsistentHashingSimulator",
]
