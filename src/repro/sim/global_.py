"""Count-level simulator of the global approach (section 2).

The global approach is the degenerate case of the local approach with a
single group that never splits: every partition shares the same splitlevel,
so the balance quality ``sigma-bar(Qv)`` equals ``sigma-bar(Pv)``
(section 2.4) and the whole simulation reduces to evolving one vector of
partition counts with :func:`repro.sim.local.greedy_fill`.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.core.config import DHTConfig
from repro.core.rebalance import greedy_fill
from repro.sim.local import CreationRecord
from repro.sim.trace import BalanceTrace
from repro.utils.rng import RngLike, ensure_rng


class GlobalBalanceSimulator:
    """Fast simulator of consecutive vnode creations under the global approach.

    The global approach is fully deterministic (no random victim-group
    selection), so a single run suffices; the ``rng`` parameter exists only
    for interface symmetry with :class:`~repro.sim.local.LocalBalanceSimulator`.

    Examples
    --------
    >>> from repro.core import DHTConfig
    >>> from repro.sim import GlobalBalanceSimulator
    >>> sim = GlobalBalanceSimulator(DHTConfig.for_global(pmin=16))
    >>> trace = sim.run(64)
    >>> float(trace.sigma_qv[63])   # V = 64 is a power of two: perfect balance (G5)
    0.0
    """

    def __init__(self, config: Optional[DHTConfig] = None, rng: RngLike = None):
        self.config = config if config is not None else DHTConfig.for_global()
        self.rng = ensure_rng(rng)
        self.counts: List[int] = []
        self.level = self.config.initial_splitlevel

    # ------------------------------------------------------------------ state

    @property
    def n_vnodes(self) -> int:
        """Current number of vnodes (``V``)."""
        return len(self.counts)

    @property
    def total_partitions(self) -> int:
        """Current number of partitions (``P``)."""
        return sum(self.counts)

    def vnode_quotas(self) -> np.ndarray:
        """Quota of every vnode (vectorized: one scaled array pass)."""
        scale = 1.0 / (1 << self.level)
        return np.asarray(self.counts, dtype=np.float64) * scale

    def sigma_qv(self) -> float:
        """Relative standard deviation of vnode quotas (== that of counts)."""
        if not self.counts:
            return 0.0
        arr = np.asarray(self.counts, dtype=np.float64)
        mean = arr.mean()
        if mean == 0:
            return 0.0
        return float(arr.std() / mean)

    def counts_snapshot(self) -> List[int]:
        """Current partition counts — used by validation tests."""
        return list(self.counts)

    # ------------------------------------------------------------------ dynamics

    def create_vnode(self) -> CreationRecord:
        """Create one vnode following the creation algorithm of section 2.5.

        Returns a :class:`~repro.sim.local.CreationRecord` (the whole DHT acts
        as a single group that never splits).
        """
        if not self.counts:
            self.counts = [self.config.pmin]
            self.level = self.config.initial_splitlevel
            return CreationRecord(
                vnode=0, group_members=[], group_size=1, n_transfers=0,
                split_all=False, group_split=False,
            )
        new_id = len(self.counts)
        previous_members = list(range(new_id))
        new_counts, new_count, level_increase = greedy_fill(self.counts, self.config.pmin)
        self.counts = new_counts + [new_count]
        self.level += level_increase
        return CreationRecord(
            vnode=new_id,
            group_members=previous_members,
            group_size=len(self.counts),
            n_transfers=new_count,
            split_all=level_increase > 0,
            group_split=False,
        )

    def run(self, n_vnodes: int) -> BalanceTrace:
        """Create ``n_vnodes`` vnodes, measuring ``sigma-bar(Qv)`` after each."""
        if n_vnodes < 1:
            raise ValueError("n_vnodes must be >= 1")
        sigma_qv = np.empty(n_vnodes, dtype=np.float64)
        for i in range(n_vnodes):
            self.create_vnode()
            sigma_qv[i] = self.sigma_qv()
        ones = np.ones(n_vnodes, dtype=np.int64)
        return BalanceTrace(
            n_vnodes=np.arange(1, n_vnodes + 1, dtype=np.int64),
            sigma_qv=sigma_qv,
            n_groups=ones,
            g_ideal=ones,
            sigma_qg=np.zeros(n_vnodes, dtype=np.float64),
        )
