"""Count-level simulator of the local (grouped) approach.

The simulator keeps, per group, the partition count of each member vnode and
the group's common splitlevel — nothing else.  This is sufficient to
reproduce every metric of the paper's evaluation:

* the quota of a vnode with ``c`` partitions in a group at splitlevel ``l``
  is exactly ``c / 2**l``;
* the quota of a group is ``P_g / 2**l``;
* the victim group of a new vnode is chosen with probability equal to its
  quota (section 3.6 selects it by looking up a uniformly random hash
  index);
* a full group splits into two random halves (section 3.7), each inheriting
  half of its quota (exact because a full group is perfectly balanced).

The per-creation balancing consumes the unified rebalancing engine's
count-bucket fast path (:func:`repro.core.rebalance.greedy_fill`, re-exported
here): the same creation policy as
:func:`repro.core.rebalance.plan_vnode_creation` but processing whole "count
buckets" at a time, so a creation costs ``O(distinct count values)`` instead
of ``O(partitions transferred)`` — the test suite checks the two produce
identical count multisets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import DHTConfig
from repro.core.errors import ConfigError
from repro.core.local_model import ideal_group_count
from repro.core.rebalance import greedy_fill
from repro.sim.trace import BalanceTrace
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["CreationRecord", "LocalBalanceSimulator", "greedy_fill"]


class _SimGroup:
    """Reduced state of one group: member partition counts and splitlevel.

    ``members`` holds the global creation index of each member vnode, aligned
    with ``counts``; the cluster-protocol simulator uses it to know which
    snodes host vnodes of a group.
    """

    __slots__ = ("level", "counts", "members", "gid")

    def __init__(
        self,
        level: int,
        counts: List[int],
        members: Optional[List[int]] = None,
        gid: int = 0,
    ):
        self.level = level
        self.counts = counts
        self.members = members if members is not None else list(range(len(counts)))
        self.gid = gid

    @property
    def n_vnodes(self) -> int:
        return len(self.counts)

    @property
    def total_partitions(self) -> int:
        return sum(self.counts)

    @property
    def quota(self) -> float:
        """Fraction of the hash space held by the group (``P_g / 2**l_g``)."""
        return self.total_partitions / (1 << self.level)

    def quota_sumsq(self) -> float:
        """Sum over member vnodes of the squared quota (for sigma updates)."""
        scale = 1.0 / (1 << self.level)
        return sum((c * scale) ** 2 for c in self.counts)


@dataclass
class CreationRecord:
    """What happened during one vnode creation (consumed by the protocol simulator).

    Attributes
    ----------
    vnode:
        Global creation index of the new vnode (0-based).
    group_members:
        Creation indices of the vnodes of the group that received the new
        vnode, *excluding* the new vnode itself.
    group_size:
        Number of vnodes in the receiving group after the creation.
    n_transfers:
        Partitions handed over to the new vnode.
    split_all:
        Whether a split-all cascade fired (every partition of the group split).
    group_split:
        Whether the victim group was full and had to split first.
    """

    vnode: int
    group_members: List[int]
    group_size: int
    n_transfers: int
    split_all: bool
    group_split: bool
    #: Persistent identifier of the group that received the vnode (simulator
    #: scoped; the two halves of a split get fresh identifiers).
    group_id: int = 0


class LocalBalanceSimulator:
    """Fast simulator of consecutive vnode creations under the local approach.

    Parameters
    ----------
    config:
        A grouped :class:`~repro.core.config.DHTConfig` (``vmin`` not None).
        ``bh`` is irrelevant at this level (only quota fractions matter).
    rng:
        Seed or generator driving the random victim-group selection and the
        random half selection after a group split.

    Examples
    --------
    >>> from repro.core import DHTConfig
    >>> from repro.sim import LocalBalanceSimulator
    >>> sim = LocalBalanceSimulator(DHTConfig.for_local(pmin=8, vmin=8), rng=3)
    >>> trace = sim.run(256)
    >>> trace.sigma_qv[7]        # V = 8 <= Vmax: still one group, perfectly balanced
    0.0
    >>> sim.n_groups >= 2
    True
    """

    def __init__(self, config: Optional[DHTConfig] = None, rng: RngLike = None):
        config = config if config is not None else DHTConfig.paper_default()
        if config.vmin is None:
            raise ConfigError("LocalBalanceSimulator requires a grouped configuration")
        self.config = config
        self.rng = ensure_rng(rng)
        self.groups: List[_SimGroup] = []
        self.n_vnodes = 0
        self.group_splits = 0
        self._next_gid = 0

    # ------------------------------------------------------------------ state

    @property
    def n_groups(self) -> int:
        """Current number of groups (``G_real``)."""
        return len(self.groups)

    def vnode_quotas(self) -> np.ndarray:
        """Quota of every vnode, concatenated across groups (vectorized)."""
        if not self.groups:
            return np.empty(0, dtype=np.float64)
        return np.concatenate(
            [
                np.asarray(group.counts, dtype=np.float64) * (1.0 / (1 << group.level))
                for group in self.groups
            ]
        )

    def group_quotas(self) -> np.ndarray:
        """Quota of every group."""
        return np.asarray([g.quota for g in self.groups], dtype=np.float64)

    def sigma_qv(self) -> float:
        """Relative standard deviation of vnode quotas (fraction, not %)."""
        if self.n_vnodes == 0:
            return 0.0
        sum_q2 = sum(g.quota_sumsq() for g in self.groups)
        # Vnode quotas always sum to exactly 1, so the mean is 1/V and
        # sigma/mean reduces to sqrt(V * sum(q^2) - 1).
        value = self.n_vnodes * sum_q2 - 1.0
        return math.sqrt(max(value, 0.0))

    def sigma_qg(self) -> float:
        """Relative standard deviation of group quotas (fraction, not %)."""
        if not self.groups:
            return 0.0
        sum_q2 = sum(g.quota**2 for g in self.groups)
        value = len(self.groups) * sum_q2 - 1.0
        return math.sqrt(max(value, 0.0))

    def ideal_group_count(self) -> int:
        """``G_ideal`` for the current number of vnodes."""
        return ideal_group_count(self.n_vnodes, self.config.vmin)

    def counts_snapshot(self) -> List[Tuple[int, List[int]]]:
        """``(splitlevel, counts)`` of every group — used by validation tests."""
        return [(g.level, list(g.counts)) for g in self.groups]

    # ------------------------------------------------------------------ dynamics

    def create_vnode(self) -> CreationRecord:
        """Create one vnode following the local algorithm (section 3.6/3.7).

        Returns a :class:`CreationRecord` describing what the creation did,
        which the cluster-protocol simulator uses to derive message counts
        and lock scopes.
        """
        cfg = self.config
        if not self.groups:
            self.groups.append(
                _SimGroup(cfg.initial_splitlevel, [cfg.pmin], members=[0], gid=self._new_gid())
            )
            self.n_vnodes = 1
            return CreationRecord(
                vnode=0,
                group_members=[],
                group_size=1,
                n_transfers=0,
                split_all=False,
                group_split=False,
                group_id=self.groups[0].gid,
            )

        new_id = self.n_vnodes
        target = self._select_victim_group()

        group_split = False
        if target.n_vnodes >= cfg.vmax:
            target = self._split_group(target)
            group_split = True

        previous_members = list(target.members)
        new_counts, new_count, level_increase = greedy_fill(target.counts, cfg.pmin)
        target.counts = new_counts + [new_count]
        target.members.append(new_id)
        target.level += level_increase
        self.n_vnodes += 1
        return CreationRecord(
            vnode=new_id,
            group_members=previous_members,
            group_size=target.n_vnodes,
            n_transfers=new_count,
            split_all=level_increase > 0,
            group_split=group_split,
            group_id=target.gid,
        )

    def _new_gid(self) -> int:
        gid = self._next_gid
        self._next_gid += 1
        return gid

    def _select_victim_group(self) -> _SimGroup:
        """Pick the victim group with probability equal to its quota.

        Equivalent to the paper's procedure of looking up a uniformly random
        hash index: the probability that the index falls inside a group's
        partitions is exactly the group's quota.
        """
        r = float(self.rng.random())
        cumulative = 0.0
        for group in self.groups:
            cumulative += group.quota
            if r < cumulative:
                return group
        return self.groups[-1]  # guard against floating-point round-off

    def _split_group(self, group: _SimGroup) -> _SimGroup:
        """Split a full group into two halves and return the half that will grow.

        A full group is perfectly balanced (every vnode at ``Pmin``), so the
        random membership selection of section 3.7 does not influence the
        count multisets: each half simply gets ``Vmin`` vnodes at ``Pmin``.
        The random draws are still consumed so runs remain comparable with
        the entity model's behaviour.
        """
        vmin = self.config.vmin
        permutation = [int(i) for i in self.rng.permutation(group.n_vnodes)]
        counts = [group.counts[i] for i in permutation]
        members = [group.members[i] for i in permutation]
        half_a = _SimGroup(group.level, counts[:vmin], members=members[:vmin], gid=self._new_gid())
        half_b = _SimGroup(group.level, counts[vmin:], members=members[vmin:], gid=self._new_gid())
        index = self.groups.index(group)
        self.groups[index] = half_a
        self.groups.append(half_b)
        self.group_splits += 1
        return half_a if int(self.rng.integers(0, 2)) == 0 else half_b

    # ------------------------------------------------------------------ running

    def run(self, n_vnodes: int, record_group_metrics: bool = True) -> BalanceTrace:
        """Create ``n_vnodes`` vnodes, measuring the metrics after each creation."""
        if n_vnodes < 1:
            raise ValueError("n_vnodes must be >= 1")
        sigma_qv = np.empty(n_vnodes, dtype=np.float64)
        n_groups = np.empty(n_vnodes, dtype=np.int64)
        g_ideal = np.empty(n_vnodes, dtype=np.int64)
        sigma_qg = np.zeros(n_vnodes, dtype=np.float64)
        for i in range(n_vnodes):
            self.create_vnode()
            sigma_qv[i] = self.sigma_qv()
            n_groups[i] = self.n_groups
            g_ideal[i] = self.ideal_group_count()
            if record_group_metrics:
                sigma_qg[i] = self.sigma_qg()
        return BalanceTrace(
            n_vnodes=np.arange(1, n_vnodes + 1, dtype=np.int64),
            sigma_qv=sigma_qv,
            n_groups=n_groups,
            g_ideal=g_ideal,
            sigma_qg=sigma_qg,
        )
