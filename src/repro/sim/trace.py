"""Trace containers produced by the fast simulators.

A *trace* records the value of one or more metrics after every vnode (or
physical node) creation, exactly like the x-axes of figures 4 and 6-9 of
the paper.  Traces are plain numpy arrays wrapped in a small dataclass so
they can be averaged across runs, sliced and serialized without any custom
logic in the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np


@dataclass
class BalanceTrace:
    """Per-creation metrics of one balance-simulation run.

    All arrays share the same length ``N`` (number of vnodes created); entry
    ``i`` is the value measured right after the creation of vnode ``i + 1``.
    """

    #: Number of vnodes after each creation: ``1, 2, ..., N``.
    n_vnodes: np.ndarray
    #: Relative standard deviation of vnode quotas, as a fraction (fig. 4/6).
    sigma_qv: np.ndarray
    #: Number of groups after each creation (``G_real`` of fig. 7).
    n_groups: np.ndarray
    #: Ideal number of groups (``G_ideal`` of fig. 7).
    g_ideal: np.ndarray
    #: Relative standard deviation of group quotas, as a fraction (fig. 8).
    sigma_qg: np.ndarray

    def __post_init__(self) -> None:
        lengths = {
            len(self.n_vnodes),
            len(self.sigma_qv),
            len(self.n_groups),
            len(self.g_ideal),
            len(self.sigma_qg),
        }
        if len(lengths) != 1:
            raise ValueError(f"trace arrays have inconsistent lengths: {lengths}")

    def __len__(self) -> int:
        return len(self.n_vnodes)

    @property
    def final_sigma_qv(self) -> float:
        """The balance quality after the last creation."""
        return float(self.sigma_qv[-1])

    def sigma_qv_percent(self) -> np.ndarray:
        """``sigma_qv`` expressed in percent, as plotted by the paper."""
        return self.sigma_qv * 100.0

    def sigma_qg_percent(self) -> np.ndarray:
        """``sigma_qg`` expressed in percent, as plotted by the paper."""
        return self.sigma_qg * 100.0

    @staticmethod
    def average(traces: Sequence["BalanceTrace"]) -> "BalanceTrace":
        """Element-wise average of several runs (the paper averages 100 runs)."""
        if not traces:
            raise ValueError("cannot average an empty list of traces")
        length = len(traces[0])
        if any(len(t) != length for t in traces):
            raise ValueError("all traces must have the same length to be averaged")
        return BalanceTrace(
            n_vnodes=traces[0].n_vnodes.copy(),
            sigma_qv=np.mean([t.sigma_qv for t in traces], axis=0),
            n_groups=np.mean([t.n_groups for t in traces], axis=0),
            g_ideal=traces[0].g_ideal.astype(np.float64).copy(),
            sigma_qg=np.mean([t.sigma_qg for t in traces], axis=0),
        )

    def to_dict(self) -> Dict[str, List[float]]:
        """Plain-Python representation (for JSON serialization in reports)."""
        return {
            "n_vnodes": self.n_vnodes.tolist(),
            "sigma_qv": self.sigma_qv.tolist(),
            "n_groups": self.n_groups.tolist(),
            "g_ideal": self.g_ideal.tolist(),
            "sigma_qg": self.sigma_qg.tolist(),
        }


@dataclass
class CHTrace:
    """Per-join metrics of one Consistent Hashing simulation run (fig. 9)."""

    #: Number of physical nodes after each join: ``1, 2, ..., N``.
    n_nodes: np.ndarray
    #: Relative standard deviation of per-node quotas, as a fraction.
    sigma_qn: np.ndarray

    def __post_init__(self) -> None:
        if len(self.n_nodes) != len(self.sigma_qn):
            raise ValueError("trace arrays have inconsistent lengths")

    def __len__(self) -> int:
        return len(self.n_nodes)

    def sigma_qn_percent(self) -> np.ndarray:
        """``sigma_qn`` expressed in percent, as plotted by the paper."""
        return self.sigma_qn * 100.0

    @staticmethod
    def average(traces: Sequence["CHTrace"]) -> "CHTrace":
        """Element-wise average of several runs."""
        if not traces:
            raise ValueError("cannot average an empty list of traces")
        length = len(traces[0])
        if any(len(t) != length for t in traces):
            raise ValueError("all traces must have the same length to be averaged")
        return CHTrace(
            n_nodes=traces[0].n_nodes.copy(),
            sigma_qn=np.mean([t.sigma_qn for t in traces], axis=0),
        )

    def to_dict(self) -> Dict[str, List[float]]:
        """Plain-Python representation (for JSON serialization in reports)."""
        return {"n_nodes": self.n_nodes.tolist(), "sigma_qn": self.sigma_qn.tolist()}
