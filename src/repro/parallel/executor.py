"""Parent-side orchestration of the multicore bulk pipeline.

:class:`ParallelExecutor` owns one :class:`~repro.parallel.pool.WorkerPool`
and one :class:`~repro.parallel.shm.ShmArena` and exposes the three hot
pipelines as *optional* accelerations: every method returns ``None`` when
the batch is ineligible (too small to amortize dispatch, wide hash space,
unsupported key kind), and the caller falls back to the serial engine.
The serial path is therefore always the semantic reference — the executor
only ever reproduces it faster.

Eligibility gates (``None`` → serial):

* ``config.workers == 0`` or batch size below ``config.min_batch``;
* hash space wider than 64 bits (object-array indices cannot live in shm);
* key kinds outside the vectorizable set (int numpy arrays; homogeneous
  str/bytes sequences for the hashing/lookup kernels).

Data movement per call: inputs are copied once into recycled *scratch*
blocks, workers write outputs into scratch or — for the sorted bulk-load
columns that become ``VnodeStore`` segments — into *pinned* blocks whose
slices the storage layer adopts zero-copy (:meth:`owns_array` is how it
recognizes them later, see ``materialize`` in the storage layer).
"""

from __future__ import annotations

import time
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import ParallelConfig
from repro.core.hashspace import HashSpace
from repro.core.lookup import PartitionRouter
from repro.parallel.pool import WorkerPool
from repro.parallel.shm import ArrayRef, ShmArena


def _slice_ref(ref: ArrayRef, lo: int, hi: int, itemsize: int) -> ArrayRef:
    """Descriptor for the ``[lo, hi)`` element sub-range of ``ref``."""
    return ArrayRef(ref.name, ref.offset + lo * itemsize, hi - lo, ref.dtype)


def _chunk_bounds(n: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``[0, n)`` into up to ``parts`` contiguous non-empty chunks."""
    bounds = []
    for i in range(parts):
        lo, hi = i * n // parts, (i + 1) * n // parts
        if hi > lo:
            bounds.append((lo, hi))
    return bounds


def _as_u64_bits(keys: np.ndarray) -> Optional[Tuple[np.ndarray, bool]]:
    """Reinterpret an integer key array as uint64 bit patterns.

    Returns ``(bits, signed)`` or ``None`` for non-integer arrays.  The
    two's-complement view of signed keys equals ``value mod 2**64`` —
    exactly what the scalar ``hash_key`` computes — and is reversible
    (``bits.view(int64)``), so sorted key columns can be reinterpreted back
    to signed without copying.
    """
    if not isinstance(keys, np.ndarray):
        return None
    if keys.dtype.kind == "u":
        return keys.astype(np.uint64, copy=False), False
    if keys.dtype.kind == "i":
        return keys.astype(np.int64, copy=False).view(np.uint64), True
    return None


def _is_blob_batch(keys: Union[Sequence, np.ndarray]) -> bool:
    """Cheap probe for a str/bytes key batch (first element only, like the
    serial fast path — a mixed batch fails over to serial via TypeError)."""
    if isinstance(keys, np.ndarray):
        return False
    first = keys[0]
    return isinstance(first, (str, bytes)) and not isinstance(first, bool)


class RoutedBatch(NamedTuple):
    """Output of :meth:`ParallelExecutor.route_batch` — per worker chunk,
    the position-sorted key/index columns plus the run geometry."""

    #: ``(lo, hi)`` input range of each chunk.
    bounds: List[Tuple[int, int]]
    #: Per chunk: sorted keys as uint64 bit patterns (pinned shm views).
    sorted_keys: List[np.ndarray]
    #: Per chunk: sorted hash indices (pinned shm views).
    sorted_indices: List[np.ndarray]
    #: Per chunk: the stable argsort permutation (``None`` without values).
    orders: Optional[List[np.ndarray]]
    #: Per chunk: exclusive cumulative row counts per table position
    #: (length ``npos + 1``); run ``pos`` of chunk ``c`` is
    #: ``[run_offsets[c][pos], run_offsets[c][pos + 1])``.
    run_offsets: List[np.ndarray]
    #: Sorted union of occupied table positions.
    present: np.ndarray
    #: True when the input keys were a signed integer array (adopted key
    #: columns must be re-viewed as int64).
    signed: bool


class ParallelExecutor:
    """Fan the hot bulk pipelines out over a worker-process pool."""

    def __init__(self, config: ParallelConfig, hash_space: HashSpace):
        self.config = config
        self.hash_space = hash_space
        self.arena = ShmArena()
        self._pool: Optional[WorkerPool] = None
        self._route_cache: Optional[Tuple[int, ArrayRef, ArrayRef, int]] = None
        self._closed = False
        #: Dispatch counters per pipeline (profiling / tests).
        self.dispatches: Dict[str, int] = {}

    # -------------------------------------------------------------- plumbing

    @property
    def workers(self) -> int:
        return self.config.workers

    def _eligible(self, n: int) -> bool:
        return (
            not self._closed
            and self.config.workers > 0
            and n >= self.config.min_batch
            and self.hash_space.bh <= 64
        )

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None:
            self._pool = WorkerPool(self.config.workers, self.config.start_method)
            self._pool.start()
        return self._pool

    def _count(self, pipeline: str) -> None:
        self.dispatches[pipeline] = self.dispatches.get(pipeline, 0) + 1

    def _route_columns(self, router: PartitionRouter) -> Tuple[ArrayRef, ArrayRef, int]:
        """Routing-table columns as shm refs, cached per topology version."""
        version = router.built_version
        cached = self._route_cache
        if cached is not None and cached[0] == version:
            return cached[1], cached[2], cached[3]
        starts, lasts = router.range_columns()
        if cached is not None:
            self.arena.release(cached[1])
            self.arena.release(cached[2])
        starts_ref, _ = self.arena.store(starts)
        lasts_ref, _ = self.arena.store(lasts)
        self._route_cache = (version, starts_ref, lasts_ref, len(starts))
        return starts_ref, lasts_ref, len(starts)

    @property
    def mask(self) -> int:
        return self.hash_space.size - 1

    def owns_array(self, array: np.ndarray) -> bool:
        """True if the array is a view into this executor's shm arena."""
        return self.arena.owns(array)

    def stats(self) -> Dict[str, object]:
        """Dispatch counters plus cumulative worker busy time (seconds)."""
        pool = self._pool
        return {
            "workers": self.config.workers,
            "dispatches": dict(self.dispatches),
            "tasks": pool.tasks_dispatched if pool else 0,
            "worker_busy_seconds": pool.busy_seconds if pool else 0.0,
            "shm_bytes": self.arena.total_bytes,
        }

    # ------------------------------------------------------------- hash_keys

    def hash_keys(self, keys: Union[Sequence, np.ndarray]) -> Optional[np.ndarray]:
        """Parallel ``HashSpace.hash_keys`` — ``None`` when ineligible."""
        n = len(keys)
        if not self._eligible(n):
            return None
        bits = _as_u64_bits(keys) if isinstance(keys, np.ndarray) else None
        if bits is None and not (n and _is_blob_batch(keys)):
            return None
        pool = self._ensure_pool()
        bounds = _chunk_bounds(n, pool.n_workers)
        out_ref, out_view = self.arena.alloc(n, np.uint64)
        scratch = [out_ref]
        try:
            if bits is not None:
                keys_ref, _ = self.arena.store(bits[0])
                scratch.append(keys_ref)
                tasks = [
                    (
                        "hash_u64",
                        {
                            "keys": _slice_ref(keys_ref, lo, hi, 8),
                            "out": _slice_ref(out_ref, lo, hi, 8),
                            "mask": self.mask,
                        },
                    )
                    for lo, hi in bounds
                ]
            else:
                tasks = [
                    (
                        "hash_blobs",
                        {
                            "keys": list(keys[lo:hi]),
                            "out": _slice_ref(out_ref, lo, hi, 8),
                            "mask": self.mask,
                        },
                    )
                    for lo, hi in bounds
                ]
            try:
                pool.run_tasks(tasks)
            except TypeError:
                # Mixed str/bytes/other batch: the serial generic path
                # handles it (per-key hash_key); we just step aside.
                return None
            self._count("hash_keys")
            return out_view.copy()
        finally:
            for ref in scratch:
                self.arena.release(ref)

    # ----------------------------------------------------------- hash_locate

    def hash_locate(
        self, router: PartitionRouter, keys: Union[Sequence, np.ndarray]
    ) -> Optional[Tuple[np.ndarray, np.ndarray, List[int]]]:
        """Parallel hash + route (the ``lookup_many`` pipeline).

        Returns ``(indices, positions, present)`` — hash indices (uint64)
        and router table positions (int64) in input order plus the sorted
        occupied positions — or ``None`` when ineligible.  Raises exactly
        what serial ``locate_batch`` raises on routing problems.
        """
        n = len(keys)
        if not self._eligible(n) or router.n_partitions == 0:
            return None
        bits = _as_u64_bits(keys) if isinstance(keys, np.ndarray) else None
        if bits is None and not (n and _is_blob_batch(keys)):
            return None
        pool = self._ensure_pool()
        starts_ref, lasts_ref, _ = self._route_columns(router)
        bounds = _chunk_bounds(n, pool.n_workers)
        idx_ref, idx_view = self.arena.alloc(n, np.uint64)
        pos_ref, pos_view = self.arena.alloc(n, np.int64)
        scratch = [idx_ref, pos_ref]
        try:
            if bits is not None:
                keys_ref, _ = self.arena.store(bits[0])
                scratch.append(keys_ref)
                tasks = [
                    (
                        "hash_locate_u64",
                        {
                            "keys": _slice_ref(keys_ref, lo, hi, 8),
                            "idx_out": _slice_ref(idx_ref, lo, hi, 8),
                            "pos_out": _slice_ref(pos_ref, lo, hi, 8),
                            "starts": starts_ref,
                            "lasts": lasts_ref,
                            "mask": self.mask,
                        },
                    )
                    for lo, hi in bounds
                ]
            else:
                tasks = [
                    (
                        "hash_blobs",
                        {
                            "keys": list(keys[lo:hi]),
                            "out": _slice_ref(idx_ref, lo, hi, 8),
                            "pos_out": _slice_ref(pos_ref, lo, hi, 8),
                            "starts": starts_ref,
                            "lasts": lasts_ref,
                            "mask": self.mask,
                        },
                    )
                    for lo, hi in bounds
                ]
            try:
                presents = pool.run_tasks(tasks)
            except TypeError:
                return None
            self._count("hash_locate")
            present = np.unique(np.concatenate(presents)).tolist()
            return idx_view.copy(), pos_view.copy(), present
        finally:
            for ref in scratch:
                self.arena.release(ref)

    # ------------------------------------------------------------ route_batch

    def route_batch(
        self, router: PartitionRouter, keys: np.ndarray, want_order: bool
    ) -> Optional[RoutedBatch]:
        """Parallel hash + route + position-sort (the ``bulk_load`` pipeline).

        Integer-array keys only (str/bytes bulk loads parallelize hashing
        via :meth:`hash_locate` and group serially — the value column is a
        python-object column that cannot cross shm anyway).  The sorted
        key/index columns land in **pinned** shm blocks; the caller adopts
        slices of them zero-copy as store segments.
        """
        n = len(keys)
        if not self._eligible(n):
            return None
        bits = _as_u64_bits(keys)
        if bits is None or router.n_partitions == 0:
            return None
        pool = self._ensure_pool()
        starts_ref, lasts_ref, npos = self._route_columns(router)
        bounds = _chunk_bounds(n, pool.n_workers)
        keys_ref, _ = self.arena.store(bits[0])
        skeys_ref, skeys_view = self.arena.alloc(n, np.uint64, pinned=True)
        sidx_ref, sidx_view = self.arena.alloc(n, np.uint64, pinned=True)
        order_ref = order_view = None
        if want_order:
            order_ref, order_view = self.arena.alloc(n, np.int64)
        try:
            tasks = [
                (
                    "route_u64",
                    {
                        "keys": _slice_ref(keys_ref, lo, hi, 8),
                        "skeys": _slice_ref(skeys_ref, lo, hi, 8),
                        "sidx": _slice_ref(sidx_ref, lo, hi, 8),
                        "order": (
                            _slice_ref(order_ref, lo, hi, 8) if want_order else None
                        ),
                        "starts": starts_ref,
                        "lasts": lasts_ref,
                        "mask": self.mask,
                        "npos": npos,
                    },
                )
                for lo, hi in bounds
            ]
            counts = pool.run_tasks(tasks)
            self._count("route_batch")
            run_offsets, present_mask = [], np.zeros(npos, dtype=bool)
            for chunk_counts in counts:
                offsets = np.zeros(npos + 1, dtype=np.int64)
                np.cumsum(chunk_counts, out=offsets[1:])
                run_offsets.append(offsets)
                present_mask |= chunk_counts > 0
            orders = None
            if want_order:
                # Private copies per chunk: the order column is scratch and
                # recycled, while the caller gathers values lazily.
                orders = [order_view[lo:hi].copy() for lo, hi in bounds]
            return RoutedBatch(
                bounds=bounds,
                sorted_keys=[skeys_view[lo:hi] for lo, hi in bounds],
                sorted_indices=[sidx_view[lo:hi] for lo, hi in bounds],
                orders=orders,
                run_offsets=run_offsets,
                present=np.flatnonzero(present_mask),
                signed=bits[1],
            )
        finally:
            self.arena.release(keys_ref)
            if order_ref is not None:
                self.arena.release(order_ref)

    # ---------------------------------------------------------- count_ranges

    def count_ranges_many(
        self, jobs: Sequence[Tuple[List[np.ndarray], np.ndarray, np.ndarray]]
    ) -> Optional[List[np.ndarray]]:
        """Parallel per-store range counting (the ``sync_replicas`` count
        pass).  Each job is ``(index_columns, starts, lasts)`` for one
        store; returns one int64 count array per job, or ``None`` when the
        total row count is too small or any column is not uint64.
        """
        if self._closed or self.config.workers == 0:
            return None
        total = sum(len(col) for cols, _, _ in jobs for col in cols)
        if total < self.config.min_batch:
            return None
        for cols, starts, _ in jobs:
            if starts.dtype != np.uint64 or any(c.dtype != np.uint64 for c in cols):
                return None
        pool = self._ensure_pool()
        scratch: List[ArrayRef] = []
        try:
            tasks = []
            for cols, starts, lasts in jobs:
                col_refs = []
                for col in cols:
                    ref, _ = self.arena.store(col)
                    scratch.append(ref)
                    col_refs.append(ref)
                starts_ref, _ = self.arena.store(starts)
                lasts_ref, _ = self.arena.store(lasts)
                scratch.extend((starts_ref, lasts_ref))
                tasks.append(
                    (
                        "count_ranges",
                        {
                            "columns": col_refs,
                            "starts": starts_ref,
                            "lasts": lasts_ref,
                            "npos": len(starts),
                        },
                    )
                )
            results = pool.run_tasks(tasks)
            self._count("count_ranges")
            return results
        finally:
            for ref in scratch:
                self.arena.release(ref)

    # ------------------------------------------------------------------ close

    def close(self) -> None:
        """Stop the pool and destroy the arena.  Idempotent.

        Callers holding zero-copy segment views must materialize them
        *before* closing (``BaseDHT.close`` does) — afterwards the shm
        blocks are unlinked and survive only as long as live mappings.
        """
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._route_cache = None
        self.arena.close()


__all__ = ["ParallelExecutor", "RoutedBatch"]
