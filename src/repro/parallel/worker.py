"""Worker-process entry point of the multicore bulk pipeline.

Each worker runs :func:`worker_main`: a blocking receive loop over one
duplex :class:`multiprocessing.Pipe`.  Messages are ``(task_name,
payload)`` tuples dispatched through :data:`repro.parallel.tasks.TASKS`;
replies are ``("ok", result, busy_seconds)`` or ``("err", exception,
busy_seconds)``.  ``None`` is the stop sentinel.

The function is a plain module-level callable so it pickles under every
start method (``spawn``/``forkserver`` import this module by name; ``fork``
inherits it).  Exceptions raised by a task are *returned*, not fatal: the
worker stays alive for the next task, and the parent re-raises in the
caller's context.  Only a broken pipe (parent gone) or the sentinel ends
the loop.
"""

from __future__ import annotations

import time

from repro.parallel.shm import mute_worker_tracker
from repro.parallel.tasks import TASKS


def worker_main(conn) -> None:
    """Serve tasks over ``conn`` until the stop sentinel or EOF."""
    mute_worker_tracker()  # parent owns every block we will ever attach
    attached: dict = {}  # SharedMemory handles, cached per block name
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # parent died or closed the pipe
            if message is None:
                break
            name, payload = message
            started = time.perf_counter()
            try:
                result = TASKS[name](payload, attached)
                reply = ("ok", result, time.perf_counter() - started)
            except BaseException as exc:  # noqa: BLE001 - relayed to parent
                reply = ("err", exc, time.perf_counter() - started)
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        for shm in attached.values():
            try:
                shm.close()
            except BufferError:  # pragma: no cover - views die with us anyway
                pass
        conn.close()


__all__ = ["worker_main"]
