"""Persistent worker-process pool with fail-fast dead-worker detection.

The pool starts ``n`` daemon processes, each served by its own duplex
:class:`multiprocessing.Pipe` (no shared queue — per-worker pipes make
round-robin dispatch deterministic and let a dead worker be attributed
precisely).  Workers live for the life of the pool; steady-state dispatch
cost is one small pickle per task, all bulk data travels through the
shared-memory arena.

Failure model: a worker killed mid-task (``kill -9``) surfaces as
:class:`~repro.core.errors.ParallelError` naming the worker — parent-side
``send`` raises ``BrokenPipeError`` and ``recv`` raises ``EOFError`` once
the child end closes, both mapped to the same precise error.  The caller
never hangs.  Exceptions *raised by* a task (as opposed to a dying worker)
are re-raised in the caller with their original type.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
from typing import List, Optional, Sequence, Tuple

from repro.core.errors import ParallelError
from repro.parallel.worker import worker_main

#: Seconds to wait for a worker to exit after the stop sentinel before
#: escalating to terminate().
_JOIN_TIMEOUT = 5.0


def _pick_start_method(requested: Optional[str]) -> str:
    """``fork`` where available (cheap startup, inherits imports), else
    ``spawn`` — unless the configuration pins a method explicitly."""
    if requested is not None:
        return requested
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


class WorkerPool:
    """``n`` persistent worker processes reachable over per-worker pipes."""

    def __init__(self, n_workers: int, start_method: Optional[str] = None):
        if n_workers < 1:
            raise ParallelError(f"worker pool needs >= 1 workers, got {n_workers}")
        self.n_workers = n_workers
        self._ctx = mp.get_context(_pick_start_method(start_method))
        self._procs: List = []
        self._conns: List = []
        self._started = False
        self._closed = False
        #: Cumulative in-task seconds reported by workers (profiling).
        self.busy_seconds = 0.0
        #: Tasks dispatched over the pool's lifetime.
        self.tasks_dispatched = 0

    # ------------------------------------------------------------------ start

    def start(self) -> None:
        """Launch the workers (idempotent; called lazily on first dispatch)."""
        if self._started:
            return
        if self._closed:
            raise ParallelError("worker pool is closed")
        for i in range(self.n_workers):
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            proc = self._ctx.Process(
                target=worker_main,
                args=(child_conn,),
                name=f"repro-worker-{i}",
                daemon=True,
            )
            proc.start()
            # The parent must drop its handle on the child end, or a dead
            # worker's pipe never reports EOF (the parent itself would keep
            # the write side open).
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        self._started = True
        atexit.register(self.close)

    # --------------------------------------------------------------- dispatch

    def _dead(self, worker: int, stage: str) -> ParallelError:
        proc = self._procs[worker]
        code = proc.exitcode
        return ParallelError(
            f"worker {worker} ({proc.name}) died during {stage}"
            f" (exitcode {code}); parallel pipeline aborted"
        )

    def run_tasks(self, tasks: Sequence[Tuple[str, dict]]) -> List:
        """Dispatch tasks round-robin and gather results in task order.

        Blocks until every task finishes.  Raises :class:`ParallelError` if
        a worker dies, or the task's own exception if one failed cleanly.
        """
        if not tasks:
            return []
        self.start()
        n = self.n_workers
        # Send everything first (pipes buffer small payloads), then collect.
        for t, (name, payload) in enumerate(tasks):
            worker = t % n
            try:
                self._conns[worker].send((name, payload))
            except (BrokenPipeError, OSError):
                raise self._dead(worker, f"dispatch of task {name!r}") from None
        results: List = []
        first_error: Optional[BaseException] = None
        for t, (name, _) in enumerate(tasks):
            worker = t % n
            try:
                status, value, busy = self._conns[worker].recv()
            except (EOFError, OSError):
                raise self._dead(worker, f"task {name!r}") from None
            self.busy_seconds += busy
            self.tasks_dispatched += 1
            if status == "err":
                # Keep draining the remaining replies (workers are fine, the
                # task raised) so the pipes stay in lockstep, then re-raise.
                if first_error is None:
                    first_error = value
                results.append(None)
            else:
                results.append(value)
        if first_error is not None:
            raise first_error
        return results

    def ping(self) -> None:
        """Round-trip every worker once (startup warm-up / liveness check)."""
        self.run_tasks([("ping", {})] * self.n_workers)

    # ------------------------------------------------------------------ close

    def close(self) -> None:
        """Stop the workers (sentinel, then join, then terminate). Idempotent."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=_JOIN_TIMEOUT)
            if proc.is_alive():  # pragma: no cover - stuck worker backstop
                proc.terminate()
                proc.join(timeout=_JOIN_TIMEOUT)
        for conn in self._conns:
            conn.close()
        self._procs = []
        self._conns = []

    @property
    def alive(self) -> bool:
        """True when started and every worker process is still running."""
        return (
            self._started
            and not self._closed
            and all(proc.is_alive() for proc in self._procs)
        )


__all__ = ["WorkerPool"]
