"""Shared-memory arena: columnar blocks workers address by descriptor.

The multicore pipeline never pickles rows between processes.  The parent
copies (or allocates) numpy columns inside ``multiprocessing.shared_memory``
blocks and ships workers :class:`ArrayRef` descriptors — ``(shm name,
byte offset, element count, dtype)`` — which the workers resolve back into
zero-copy numpy views (:func:`attach_view`).  A 10M-key batch therefore
crosses the process boundary as a few hundred bytes of descriptors instead
of hundreds of megabytes of pickle.

Two block classes exist:

* **scratch** blocks hold per-call inputs and intermediates.  They are
  recycled between calls through a size-keyed free pool, so a steady-state
  bulk pipeline allocates shm once and reuses it.
* **pinned** blocks hold columns that outlive the call — the sorted
  key/index columns ``bulk_load`` adopts *zero-copy* as ``VnodeStore``
  pending segments.  They are never recycled; :meth:`ShmArena.owns` lets
  the storage layer detect such views (and materialize private copies
  before the arena goes away, see
  :meth:`repro.core.storage.DHTStorage.materialize_shared_segments`).

Lifecycle notes (learned the hard way):

* ``SharedMemory.close()`` raises :class:`BufferError` while any numpy
  view into the block is alive; ``unlink()`` works regardless (the POSIX
  name disappears, the mapping stays valid until unmapped).  Arena close
  therefore always unlinks — no ``/dev/shm`` leak even on sloppy exits —
  and merely best-efforts the ``close()``.
* Workers attaching by name immediately unregister the block from their
  ``resource_tracker`` — the parent owns cleanup; double-tracking would
  produce spurious "leaked shared_memory" warnings (or double unlinks) at
  worker exit.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, NamedTuple, Tuple

import numpy as np


class ArrayRef(NamedTuple):
    """Descriptor of one numpy array living inside a shared-memory block."""

    #: ``SharedMemory`` name the array lives in.
    name: str
    #: Byte offset of the first element inside the block.
    offset: int
    #: Number of elements.
    count: int
    #: Numpy dtype string (e.g. ``"uint64"``, ``"int64"``).
    dtype: str


def mute_worker_tracker() -> None:
    """Stop this process's resource tracker from adopting attached blocks.

    Called once at worker startup, **before** the first attach.  Workers
    only ever attach parent-owned blocks; the parent owns unlink.  Letting
    the attach register anyway is wrong under both start methods, for
    different reasons: with ``spawn`` the worker's own tracker "cleans up"
    (unlinks!) the parent's live blocks at worker exit with a leak warning;
    with ``fork`` the tracker *process* is shared, so a worker-side
    unregister would cancel the parent's registration and the parent's
    later unlink would crash the tracker loop with a ``KeyError``.
    """
    resource_tracker.register = _ignore_resource  # type: ignore[assignment]


def _ignore_resource(name: str, rtype: str) -> None:
    """No-op ``resource_tracker.register`` for worker processes."""


def attach_view(ref: ArrayRef, attached: Dict[str, shared_memory.SharedMemory]) -> np.ndarray:
    """Resolve a descriptor into a numpy view (worker side).

    ``attached`` caches one ``SharedMemory`` handle per block name for the
    life of the worker (see :func:`mute_worker_tracker` for why attaching
    must not register the block).
    """
    shm = attached.get(ref.name)
    if shm is None:
        shm = shared_memory.SharedMemory(name=ref.name)
        attached[ref.name] = shm
    return np.frombuffer(
        shm.buf, dtype=np.dtype(ref.dtype), count=ref.count, offset=ref.offset
    )


def _noop() -> None:
    """Replacement ``close`` for blocks whose unmap must wait for live views."""


def _round_size(nbytes: int) -> int:
    """Round a block size up to a power of two (>= 4 KiB) for pooling."""
    size = 4096
    while size < nbytes:
        size <<= 1
    return size


class _Block:
    """One owned ``SharedMemory`` block plus its parent-side address range."""

    __slots__ = ("shm", "size", "addr", "pinned")

    def __init__(self, shm: shared_memory.SharedMemory, pinned: bool) -> None:
        self.shm = shm
        self.size = shm.size
        # Base address of the mapping in THIS process, for owns() lookups.
        self.addr = np.frombuffer(shm.buf, dtype=np.uint8).ctypes.data
        self.pinned = pinned


class ShmArena:
    """Allocate, pool and destroy the shared-memory blocks of one executor."""

    def __init__(self) -> None:
        self._blocks: Dict[str, _Block] = {}
        #: Recyclable scratch blocks by rounded size (name lists).
        self._free: Dict[int, List[str]] = {}
        self._closed = False

    # ---------------------------------------------------------------- allocate

    def _new_block(self, nbytes: int, pinned: bool) -> _Block:
        if self._closed:
            raise ValueError("shm arena is closed")
        shm = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
        block = _Block(shm, pinned)
        self._blocks[shm.name] = block
        return block

    def _take_scratch(self, nbytes: int) -> _Block:
        size = _round_size(nbytes)
        names = self._free.get(size)
        if names:
            return self._blocks[names.pop()]
        return self._new_block(size, pinned=False)

    def alloc(self, count: int, dtype, pinned: bool = False) -> Tuple[ArrayRef, np.ndarray]:
        """Allocate an uninitialized array; returns ``(descriptor, view)``."""
        dt = np.dtype(dtype)
        nbytes = count * dt.itemsize
        block = self._new_block(nbytes, True) if pinned else self._take_scratch(nbytes)
        ref = ArrayRef(block.shm.name, 0, count, dt.name)
        return ref, np.frombuffer(block.shm.buf, dtype=dt, count=count)

    def store(self, array: np.ndarray, pinned: bool = False) -> Tuple[ArrayRef, np.ndarray]:
        """Copy an array into the arena; returns ``(descriptor, view)``."""
        ref, view = self.alloc(len(array), array.dtype, pinned=pinned)
        view[:] = array
        return ref, view

    def release(self, ref: ArrayRef) -> None:
        """Return a scratch block to the free pool (no-op for pinned blocks)."""
        block = self._blocks.get(ref.name)
        if block is None or block.pinned:
            return
        self._free.setdefault(block.size, []).append(ref.name)

    # ------------------------------------------------------------------ lookup

    def view(self, ref: ArrayRef) -> np.ndarray:
        """Parent-side view of a descriptor (the block must be arena-owned)."""
        block = self._blocks[ref.name]
        return np.frombuffer(
            block.shm.buf, dtype=np.dtype(ref.dtype), count=ref.count, offset=ref.offset
        )

    def owns(self, array: np.ndarray) -> bool:
        """True if the array's data lives inside one of this arena's blocks.

        Pointer-range check against every owned block — this is how the
        storage layer recognizes zero-copy shm segments it must materialize
        before the arena is destroyed.
        """
        if array.dtype == object or array.nbytes == 0:
            return False
        addr = array.ctypes.data
        end = addr + array.nbytes
        for block in self._blocks.values():
            if block.addr <= addr and end <= block.addr + block.size:
                return True
        return False

    @property
    def block_names(self) -> List[str]:
        """Names of every live block (tests assert none leak after close)."""
        return list(self._blocks)

    @property
    def total_bytes(self) -> int:
        """Bytes currently held across all blocks (pinned + scratch)."""
        return sum(block.size for block in self._blocks.values())

    # ------------------------------------------------------------------- close

    def close(self) -> None:
        """Unlink and close every block.  Safe to call repeatedly.

        Unlink always succeeds (removing the ``/dev/shm`` entry even while
        mappings are alive); ``close()`` is best-effort because numpy views
        still referencing a block legally prevent unmapping — callers that
        adopted zero-copy segments materialize them first (see module
        docstring).
        """
        self._closed = True
        blocks, self._blocks = self._blocks, {}
        self._free = {}
        for block in blocks.values():
            try:
                block.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
            try:
                block.shm.close()
            except BufferError:
                # A live view still maps the block; the memory is reclaimed
                # when the last view dies (mmap deallocation unmaps).  The
                # name is already gone.  Disarm the __del__ retry so the
                # interpreter never prints an ignored BufferError.
                block.shm.close = _noop


__all__ = ["ArrayRef", "ShmArena", "attach_view"]
