"""Worker-side compute kernels of the multicore bulk pipeline.

Every task is a pure function ``fn(payload, attached) -> result`` operating
on numpy views resolved from :class:`~repro.parallel.shm.ArrayRef`
descriptors in ``payload``.  Tasks run inside worker processes (dispatched
by :class:`~repro.parallel.pool.WorkerPool`) but are deliberately
process-agnostic — the test suite calls them in-process to pin their
numerics against the serial engine.

The kernels mirror the serial engine *exactly*:

* hashing is the same vectorized SplitMix64 finalizer the serial
  :meth:`~repro.core.hashspace.HashSpace.hash_keys` uses (imported, not
  re-derived) and the same BLAKE2b low-64 construction for str/bytes keys;
* routing replicates :meth:`~repro.core.lookup.PartitionRouter.locate_batch`
  — ``searchsorted(side="right") - 1`` over partition starts plus the
  post-hoc gap check, raising :class:`~repro.core.errors.KeyLookupError`
  with the identical messages;
* range counting replicates the ``searchsorted``/``bincount`` bucketing of
  ``VnodeStore.count_buckets``.

Keys reach hash kernels as **uint64 bit patterns**: the caller reinterprets
signed arrays via two's complement (``.view(np.uint64)``), which is exactly
the ``value mod 2**64`` the scalar ``hash_key`` computes.

A worker never mutates an input block; outputs go to dedicated output
refs, so a task that dies midway leaves inputs intact for a retry against
the serial path.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.errors import KeyLookupError
from repro.core.hashspace import _splitmix64_vec
from repro.parallel.shm import ArrayRef, attach_view


def _hash_blob_batch(keys: List) -> np.ndarray:
    """BLAKE2b low-64 digests of a str/bytes key list (uint64 array).

    The same construction as the serial ``HashSpace.hash_keys`` fast path:
    16-byte digests accumulated into one buffer, low 8 bytes of each taken
    big-endian.  Mixed/unsupported entries raise ``TypeError`` — the
    executor only ships homogeneous str/bytes chunks.
    """
    blake2b = hashlib.blake2b
    buf = bytearray()
    extend = buf.extend
    for key in keys:
        if isinstance(key, str):
            data = key.encode("utf-8")
        elif isinstance(key, bytes):
            data = key
        else:
            raise TypeError(f"unsupported key type {type(key).__name__} in blob batch")
        extend(blake2b(data, digest_size=16).digest())
    if not keys:
        return np.empty(0, dtype=np.uint64)
    return np.frombuffer(bytes(buf), dtype=">u8")[1::2].astype(np.uint64)


def _locate(
    indices: np.ndarray, starts: np.ndarray, lasts: np.ndarray
) -> np.ndarray:
    """Table positions of hash indices — ``PartitionRouter.locate_batch``'s
    core, bit for bit (including error messages).

    The caller guarantees the indices are in-range (they come out of the
    hash kernels already masked to the hash space), so only the coverage
    checks remain.
    """
    positions = np.searchsorted(starts, indices, side="right").astype(
        np.int64, copy=False
    ) - 1
    preceding = positions < 0
    safe = np.where(preceding, 0, positions)
    uncovered = preceding | (indices > lasts[safe])
    if uncovered.any():
        at = int(np.argmax(uncovered))
        offender = int(indices[at])
        if bool(preceding[at]):
            raise KeyLookupError(
                f"hash index {offender} precedes every partition; routing table corrupt"
            )
        raise KeyLookupError(
            f"hash index {offender} not covered by any partition; routing table "
            "has a gap (invariant G1 violated)"
        )
    return positions


def task_ping(payload: dict, attached: dict):
    """Liveness probe (also warms the worker's numpy import on spawn)."""
    return "pong"


def task_hash_u64(payload: dict, attached: dict):
    """SplitMix64-hash a uint64 key chunk into ``out``.

    Payload: ``keys`` (uint64 bit patterns), ``out`` (uint64), ``mask``.
    """
    keys = attach_view(payload["keys"], attached)
    out = attach_view(payload["out"], attached)
    out[:] = _splitmix64_vec(keys) & np.uint64(payload["mask"])
    return None


def task_hash_blobs(payload: dict, attached: dict):
    """BLAKE2b-hash a str/bytes key chunk; optionally route it too.

    Payload: ``keys`` (pickled list — object keys cannot live in shm),
    ``out`` (uint64), ``mask``; optionally ``starts``/``lasts``/``pos_out``
    to also locate each index.  Returns the sorted array of occupied table
    positions when routing, else ``None``.
    """
    out = attach_view(payload["out"], attached)
    out[:] = _hash_blob_batch(payload["keys"]) & np.uint64(payload["mask"])
    if "starts" not in payload:
        return None
    starts = attach_view(payload["starts"], attached)
    lasts = attach_view(payload["lasts"], attached)
    pos_out = attach_view(payload["pos_out"], attached)
    pos_out[:] = _locate(out, starts, lasts)
    return np.unique(pos_out)


def task_hash_locate_u64(payload: dict, attached: dict):
    """Hash + route a uint64 key chunk (the ``lookup_many`` kernel).

    Payload: ``keys`` (uint64 bit patterns), ``starts``/``lasts`` (routing
    table columns), ``idx_out`` (uint64), ``pos_out`` (int64), ``mask``.
    Writes hash indices and table positions in input order; returns the
    sorted array of occupied table positions (for the route-table union).
    """
    keys = attach_view(payload["keys"], attached)
    idx_out = attach_view(payload["idx_out"], attached)
    pos_out = attach_view(payload["pos_out"], attached)
    starts = attach_view(payload["starts"], attached)
    lasts = attach_view(payload["lasts"], attached)
    idx_out[:] = _splitmix64_vec(keys) & np.uint64(payload["mask"])
    pos_out[:] = _locate(idx_out, starts, lasts)
    return np.unique(pos_out)


def task_route_u64(payload: dict, attached: dict):
    """Hash, route and position-sort a uint64 key chunk (the ``bulk_load``
    kernel).

    Payload: ``keys`` (uint64 bit patterns), ``starts``/``lasts``,
    ``skeys``/``sidx`` (uint64 outputs: keys and hash indices reordered by
    stable argsort on table position), optional ``order`` (int64 output:
    the argsort permutation itself, needed by the parent to reorder the
    python-object value column), ``mask``, ``npos``.

    Returns the per-position row counts (``int64``, length ``npos``) whose
    cumulative sums delimit the sorted runs — the parallel counterpart of
    the serial engine's ``_position_runs``.  The stable sort keeps rows of
    one position in input order, so adopting runs in (position, chunk)
    order reproduces the serial engine's write order exactly.
    """
    keys = attach_view(payload["keys"], attached)
    skeys = attach_view(payload["skeys"], attached)
    sidx = attach_view(payload["sidx"], attached)
    starts = attach_view(payload["starts"], attached)
    lasts = attach_view(payload["lasts"], attached)
    idx = _splitmix64_vec(keys) & np.uint64(payload["mask"])
    pos = _locate(idx, starts, lasts)
    order = np.argsort(pos, kind="stable")
    skeys[:] = keys[order]
    sidx[:] = idx[order]
    if payload.get("order") is not None:
        attach_view(payload["order"], attached)[:] = order
    return np.bincount(pos, minlength=payload["npos"])


def task_count_ranges(payload: dict, attached: dict):
    """Count rows per ``[start, last]`` range across uint64 index columns.

    Payload: ``columns`` (list of uint64 refs — one store's hash-tier index
    column plus its pending-segment index columns), ``starts``/``lasts``
    (the ranges, sorted by start), ``npos``.  Returns int64 counts, length
    ``npos`` — the same bucketing as ``VnodeStore.count_buckets``.
    """
    starts = attach_view(payload["starts"], attached)
    lasts = attach_view(payload["lasts"], attached)
    npos = payload["npos"]
    counts = np.zeros(npos, dtype=np.int64)
    for ref in payload["columns"]:
        indexes = attach_view(ref, attached)
        # count_buckets semantics, vectorized (_locate_ranges + bincount):
        # a position is valid only when the index falls inside its range.
        pos = np.searchsorted(starts, indexes, side="right").astype(
            np.int64, copy=False
        ) - 1
        safe = np.where(pos < 0, 0, pos)
        inside = (pos >= 0) & (indexes <= lasts[safe])
        rows = np.flatnonzero(inside)
        if rows.size:
            counts += np.bincount(pos[rows], minlength=npos)
    return counts


#: Task registry the worker loop dispatches through.
TASKS: Dict[str, Callable[[dict, dict], object]] = {
    "ping": task_ping,
    "hash_u64": task_hash_u64,
    "hash_blobs": task_hash_blobs,
    "hash_locate_u64": task_hash_locate_u64,
    "route_u64": task_route_u64,
    "count_ranges": task_count_ranges,
}

__all__ = ["TASKS"]
