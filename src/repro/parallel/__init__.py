"""Multicore bulk pipeline: process-parallel fan-out over shared memory.

A library extension beyond the paper (whose cost model is single-threaded,
section 4): the vectorized batch engine of the serial model saturates one
core, so 10M-key ``bulk_load``/``lookup_many`` batches are interpreter- and
GIL-bound rather than hardware-bound.  This package shards the columnar
work across OS processes, passing ``(shm_name, offset, length)`` descriptors
instead of pickled rows:

``shm``
    The shared-memory arena: descriptor type, block pooling, zero-copy
    adoption bookkeeping.
``tasks``
    Worker-side kernels (SplitMix64/BLAKE2b hashing, routing, position
    sort, range counting) — numerically identical to the serial engine.
``worker`` / ``pool``
    The persistent worker-process pool and its fail-fast pipe protocol.
``executor``
    Parent-side orchestration; every pipeline returns ``None`` when
    ineligible so callers fall back to the (always-correct) serial path.

Enabled per DHT via ``DHTConfig(parallel=ParallelConfig(workers=N))``;
``workers=0`` — the default — never imports multiprocessing machinery and
keeps every path bit-identical to the serial engine.
"""

from repro.parallel.executor import ParallelExecutor, RoutedBatch
from repro.parallel.pool import WorkerPool
from repro.parallel.shm import ArrayRef, ShmArena

__all__ = [
    "ArrayRef",
    "ParallelExecutor",
    "RoutedBatch",
    "ShmArena",
    "WorkerPool",
]
