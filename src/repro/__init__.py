"""Reproduction of "A Cluster Oriented Model for Dynamically Balanced DHTs".

Rufino, Alves, Exposto, Pina — IPDPS 2004.

The library provides:

* ``repro.core`` — the paper's model: the *global* approach (GPDR, complete
  knowledge) and the *local* approach (groups + LPDR, partial knowledge),
  with a full entity layer (snodes, vnodes, partitions, key/value storage).
* ``repro.baselines`` — the Consistent Hashing reference model.
* ``repro.sim`` — fast, count-level simulators used by the benchmark
  harness to regenerate the paper's evaluation figures.
* ``repro.cluster`` — a cluster substrate (heterogeneous nodes, message
  model, discrete-event protocol simulation) used to quantify the
  parallelism claims of the paper.
* ``repro.metrics`` / ``repro.workloads`` / ``repro.experiments`` — balance
  metrics, workload generators and the per-figure experiment harness.

Quickstart
----------
>>> from repro import DHTConfig, LocalDHT
>>> dht = LocalDHT(DHTConfig.for_local(pmin=8, vmin=8), rng=7)
>>> snodes = dht.add_snodes(4)
>>> for snode in snodes:
...     for _ in range(8):
...         _ = dht.create_vnode(snode)
>>> dht.put("user:42", {"name": "Ada"})             # doctest: +ELLIPSIS
LookupResult(...)
>>> dht.get("user:42")
{'name': 'Ada'}

For million-key workloads use the batch API — ``dht.bulk_load(keys,
values)``, ``dht.lookup_many(keys)``, ``dht.get_many(keys)`` — which
vectorizes hashing, routing and storage end to end (see README.md and
docs/architecture.md).
"""

from repro.core import (
    BatchLookupResult,
    DHTConfig,
    GlobalDHT,
    GroupId,
    HashSpace,
    InvariantViolation,
    LocalDHT,
    LookupResult,
    Partition,
    ReproError,
    SimulationConfig,
    SnodeId,
    VnodeRef,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "DHTConfig",
    "SimulationConfig",
    "GlobalDHT",
    "LocalDHT",
    "HashSpace",
    "Partition",
    "SnodeId",
    "VnodeRef",
    "GroupId",
    "LookupResult",
    "BatchLookupResult",
    "ReproError",
    "InvariantViolation",
]
