"""The θ parameter-selection metric of section 4.1.2 (figure 5).

Choosing ``Vmin`` trades balance quality against resources: larger groups
(bigger ``Vmin``) balance better but need larger LPDR tables, longer sorts
and more synchronization.  The paper defines

    θ = α · Vmin / max(Vmin)  +  β · σ̄(Qv) / max(σ̄(Qv)),     α + β = 1

over the candidate ``Vmin`` values (both terms normalized by their maximum
over the candidates) and picks the ``Vmin`` minimizing θ.  With α = β = 0.5
and the candidates {8, 16, 32, 64, 128} the paper finds ``Vmin = 32``.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple, Union

import numpy as np

from repro.core.errors import ReproError

ArrayLike = Union[Sequence[float], np.ndarray]


def theta(
    vmin_values: ArrayLike,
    sigma_values: ArrayLike,
    alpha: float = 0.5,
    beta: float = 0.5,
) -> np.ndarray:
    """θ score for each candidate ``Vmin`` (lower is better).

    Parameters
    ----------
    vmin_values:
        Candidate ``Vmin`` values.  Must be non-empty: θ normalizes both
        terms by their maximum over the candidates, so an empty candidate
        list has no meaning (it used to silently return an empty array).
    sigma_values:
        The balance quality ``sigma-bar(Qv)`` measured for each candidate
        (same order and length); fractions and percentages both work since
        the metric is normalized by its maximum.
    alpha, beta:
        Complementary weights (must sum to 1).

    Raises
    ------
    ReproError
        If the weights do not sum to 1 or are negative, the candidate list
        is empty, or the two series disagree in length — instead of
        silently producing a nonsense score.
    """
    if not np.isclose(alpha + beta, 1.0):
        raise ReproError(
            f"theta weights must satisfy alpha + beta == 1, got "
            f"alpha={alpha} + beta={beta} = {alpha + beta}"
        )
    if alpha < 0 or beta < 0:
        raise ReproError(
            f"theta weights must be non-negative, got alpha={alpha}, beta={beta}"
        )
    vmins = np.asarray(vmin_values, dtype=np.float64)
    sigmas = np.asarray(sigma_values, dtype=np.float64)
    if vmins.size == 0:
        raise ReproError(
            "theta needs at least one candidate Vmin (both terms are "
            "normalized by their maximum over the candidates)"
        )
    if vmins.shape != sigmas.shape:
        raise ReproError(
            f"theta candidate series disagree: {vmins.shape[0] if vmins.ndim else 1} "
            f"Vmin values vs {sigmas.shape[0] if sigmas.ndim else 1} sigma values"
        )
    vmax = vmins.max()
    smax = sigmas.max()
    vterm = vmins / vmax if vmax > 0 else np.zeros_like(vmins)
    sterm = sigmas / smax if smax > 0 else np.zeros_like(sigmas)
    return alpha * vterm + beta * sterm


def theta_scores(
    sigma_by_vmin: Dict[int, float], alpha: float = 0.5, beta: float = 0.5
) -> Dict[int, float]:
    """θ score per candidate ``Vmin``, from a ``Vmin -> sigma`` mapping."""
    vmins = sorted(sigma_by_vmin)
    sigmas = [sigma_by_vmin[v] for v in vmins]
    scores = theta(vmins, sigmas, alpha=alpha, beta=beta)
    return dict(zip(vmins, scores.tolist()))


def best_vmin(
    sigma_by_vmin: Dict[int, float], alpha: float = 0.5, beta: float = 0.5
) -> Tuple[int, float]:
    """The ``Vmin`` minimizing θ and its score (ties go to the smaller ``Vmin``)."""
    if not sigma_by_vmin:
        raise ReproError("best_vmin needs a non-empty Vmin -> sigma mapping")
    scores = theta_scores(sigma_by_vmin, alpha=alpha, beta=beta)
    winner = min(scores, key=lambda v: (scores[v], v))
    return winner, scores[winner]
