"""Aggregation of metrics across repeated simulation runs.

The paper averages every curve over 100 runs to smooth the randomness of
victim-group selection (and of CH ring positions).  The experiment harness
uses these helpers to average traces, compute run-to-run variability and
summarize a curve into the handful of numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

import numpy as np

ArrayLike = Union[Sequence[float], np.ndarray]


@dataclass(frozen=True)
class RunStatistics:
    """Per-point statistics of a metric across runs."""

    mean: np.ndarray
    std: np.ndarray
    minimum: np.ndarray
    maximum: np.ndarray
    n_runs: int

    def confidence_halfwidth(self, z: float = 1.96) -> np.ndarray:
        """Half-width of the normal-approximation confidence interval."""
        if self.n_runs <= 1:
            return np.zeros_like(self.mean)
        return z * self.std / np.sqrt(self.n_runs)

    def as_dict(self) -> Dict[str, List[float]]:
        """Plain-dict view (for JSON serialization)."""
        return {
            "mean": self.mean.tolist(),
            "std": self.std.tolist(),
            "min": self.minimum.tolist(),
            "max": self.maximum.tolist(),
            "n_runs": self.n_runs,
        }


def summarize_runs(curves: Sequence[ArrayLike]) -> RunStatistics:
    """Point-wise statistics over several runs of the same curve."""
    if not curves:
        raise ValueError("curves must not be empty")
    stacked = np.vstack([np.asarray(c, dtype=np.float64) for c in curves])
    return RunStatistics(
        mean=stacked.mean(axis=0),
        std=stacked.std(axis=0),
        minimum=stacked.min(axis=0),
        maximum=stacked.max(axis=0),
        n_runs=stacked.shape[0],
    )


def average_curves(curves: Sequence[ArrayLike]) -> np.ndarray:
    """Element-wise mean of several equally sized curves."""
    return summarize_runs(curves).mean


def tail_mean(curve: ArrayLike, fraction: float = 0.25) -> float:
    """Mean of the last ``fraction`` of a curve.

    Used to summarize the "plateau" value of the sigma curves (the 2nd zone
    of figure 4, where the metric stabilizes after the initial transient).
    """
    arr = np.asarray(curve, dtype=np.float64)
    if arr.size == 0:
        return 0.0
    if not (0.0 < fraction <= 1.0):
        raise ValueError("fraction must be in (0, 1]")
    start = int(np.floor(arr.size * (1.0 - fraction)))
    start = min(start, arr.size - 1)
    return float(arr[start:].mean())


def value_at(curve: ArrayLike, x_values: ArrayLike, x: float) -> float:
    """Value of a sampled curve at abscissa ``x`` (nearest sample)."""
    xs = np.asarray(x_values, dtype=np.float64)
    ys = np.asarray(curve, dtype=np.float64)
    if xs.size == 0 or xs.shape != ys.shape:
        raise ValueError("x_values and curve must be non-empty and equally sized")
    index = int(np.argmin(np.abs(xs - x)))
    return float(ys[index])
