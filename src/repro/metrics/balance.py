"""Balance-quality metrics (sections 2.3, 2.4, 3.5 and 4.3 of the paper).

The model's goal is that every vnode be responsible for a similar share of
the hash space.  The paper quantifies this with the *relative standard
deviation* of the quotas: the standard deviation of the quota values from
the ideal average, divided by that average, usually expressed in percent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.base import BaseDHT

ArrayLike = Union[Sequence[float], np.ndarray]


def relative_std(values: ArrayLike, ideal_mean: Optional[float] = None) -> float:
    """Relative standard deviation of ``values`` (as a fraction, not percent).

    Parameters
    ----------
    values:
        The series (quotas or partition counts).
    ideal_mean:
        The reference average to deviate from.  The paper uses the *ideal*
        average (``1/V`` for vnode quotas, ``1/G`` for group quotas); when
        quotas sum to 1 this equals the sample mean, so omitting it gives the
        same result for well-formed inputs.

    Returns
    -------
    float
        ``sqrt(mean((x - mean)^2)) / mean``; 0.0 for empty input or zero mean.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return 0.0
    mean = float(arr.mean()) if ideal_mean is None else float(ideal_mean)
    if mean == 0:
        return 0.0
    return float(np.sqrt(np.mean((arr - mean) ** 2)) / mean)


def relative_std_percent(values: ArrayLike, ideal_mean: Optional[float] = None) -> float:
    """Relative standard deviation expressed in percent (as the paper plots it)."""
    return 100.0 * relative_std(values, ideal_mean)


def sigma_from_quotas(quotas: Union[ArrayLike, Mapping[object, float]]) -> float:
    """``sigma-bar(Q)`` from a quota vector or a ``entity -> quota`` mapping.

    The ideal mean is ``1 / n``: quotas of a complete DHT always sum to 1.
    """
    if isinstance(quotas, Mapping):
        values = np.asarray(list(quotas.values()), dtype=np.float64)
    else:
        values = np.asarray(quotas, dtype=np.float64)
    if values.size == 0:
        return 0.0
    return relative_std(values, ideal_mean=1.0 / values.size)


def sigma_from_counts(counts: Union[ArrayLike, Mapping[object, int]]) -> float:
    """``sigma-bar(Pv)`` from partition counts.

    Valid as a quota metric only when every partition has the same size
    (the global approach, section 2.4); the local approach must use
    :func:`sigma_from_quotas` instead (section 3.5).
    """
    if isinstance(counts, Mapping):
        values = np.asarray(list(counts.values()), dtype=np.float64)
    else:
        values = np.asarray(counts, dtype=np.float64)
    return relative_std(values)


@dataclass(frozen=True)
class QuotaSummary:
    """Descriptive statistics of a quota distribution."""

    count: int
    mean: float
    std: float
    relative_std: float
    minimum: float
    maximum: float
    max_over_ideal: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (for reports)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "relative_std": self.relative_std,
            "min": self.minimum,
            "max": self.maximum,
            "max_over_ideal": self.max_over_ideal,
        }


def quota_summary(quotas: Union[ArrayLike, Mapping[object, float]]) -> QuotaSummary:
    """Summarize a quota distribution (used by examples and reports).

    ``max_over_ideal`` is the load of the most loaded entity relative to the
    ideal share — a common alternative imbalance measure, included because it
    is what operators usually care about when sizing nodes.
    """
    if isinstance(quotas, Mapping):
        values = np.asarray(list(quotas.values()), dtype=np.float64)
    else:
        values = np.asarray(quotas, dtype=np.float64)
    if values.size == 0:
        return QuotaSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    ideal = 1.0 / values.size
    return QuotaSummary(
        count=int(values.size),
        mean=float(values.mean()),
        std=float(values.std()),
        relative_std=relative_std(values, ideal_mean=ideal),
        minimum=float(values.min()),
        maximum=float(values.max()),
        max_over_ideal=float(values.max() / ideal) if ideal > 0 else 0.0,
    )


@dataclass(frozen=True)
class LoadAxisStats:
    """Item-load statistics over one axis (per-vnode or per-snode)."""

    count: int
    total: int
    mean: float
    maximum: int
    #: Relative standard deviation of the loads (fraction, not percent).
    sigma: float
    #: Load of the most loaded entity relative to the mean (1.0 = perfect).
    max_over_mean: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (for reports)."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "max": self.maximum,
            "sigma": self.sigma,
            "max_over_mean": self.max_over_mean,
        }


@dataclass(frozen=True)
class ItemLoadStats:
    """Item-weighted imbalance of a live DHT: σ and max/mean of *item* loads.

    The paper's ``sigma(Pv)``/``sigma(Qv)`` weigh every partition equally;
    under a skewed key distribution they report perfect balance while the
    stored items pile onto a few vnodes.  These statistics weigh by the
    *measured* item loads instead — the quantity
    :meth:`~repro.core.base.BaseDHT.rebalance_load` optimizes.
    """

    vnodes: LoadAxisStats
    snodes: LoadAxisStats

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Plain-dict view (for reports)."""
        return {"vnodes": self.vnodes.as_dict(), "snodes": self.snodes.as_dict()}


def load_axis_stats(loads: ArrayLike) -> LoadAxisStats:
    """Summarize one axis of item loads (σ, max, max/mean)."""
    arr = np.asarray(loads, dtype=np.int64)
    if arr.size == 0:
        return LoadAxisStats(0, 0, 0.0, 0, 0.0, 0.0)
    mean = float(arr.mean())
    return LoadAxisStats(
        count=int(arr.size),
        total=int(arr.sum()),
        mean=mean,
        maximum=int(arr.max()),
        sigma=relative_std(arr),
        max_over_mean=float(arr.max() / mean) if mean > 0 else 0.0,
    )


def item_load_stats(dht: "BaseDHT") -> ItemLoadStats:
    """Measure a DHT's per-vnode and per-snode item-load imbalance, merge-free.

    Loads are primary-row counts via
    :meth:`~repro.core.storage.DHTStorage.fast_primary_count` — counting
    never merges the columnar storage segments, so taking the metric is
    safe in the middle of a bulk/churn run.  Snode loads aggregate over the
    vnodes each snode hosts (snodes hosting no vnode cannot store items
    and are excluded).
    """
    vnode_loads: Dict[object, int] = {}
    snode_loads: Dict[object, int] = {}
    for ref in dht.vnodes:
        rows = dht.storage.fast_primary_count(ref)
        vnode_loads[ref] = rows
        snode_loads[ref.snode] = snode_loads.get(ref.snode, 0) + rows
    return ItemLoadStats(
        vnodes=load_axis_stats(list(vnode_loads.values())),
        snodes=load_axis_stats(list(snode_loads.values())),
    )
