"""Group-level metrics of the local approach (section 4.2 of the paper).

Figure 7 compares the *real* number of groups against the *ideal* one (the
number of groups should double whenever the overall number of vnodes crosses
a power-of-two boundary); figure 8 tracks ``sigma-bar(Qg)``, the relative
standard deviation of group quotas, whose spikes correlate with the
divergence between the two curves.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Union

import numpy as np

# Re-exported so metric users do not need to know the function lives with the
# core model (the model itself uses it for its own reporting).
from repro.core.local_model import ideal_group_count

ArrayLike = Union[Sequence[float], np.ndarray]


def ideal_group_trace(n_vnodes: int, vmin: int) -> np.ndarray:
    """``G_ideal`` after each of ``n_vnodes`` consecutive creations (fig. 7)."""
    if n_vnodes < 1:
        return np.empty(0, dtype=np.int64)
    return np.asarray(
        [ideal_group_count(v, vmin) for v in range(1, n_vnodes + 1)], dtype=np.int64
    )


def sigma_qg_from_quotas(group_quotas: Union[ArrayLike, Mapping[object, float]]) -> float:
    """``sigma-bar(Qg)`` from group quotas, against the ideal average ``1/G``."""
    if isinstance(group_quotas, Mapping):
        values = np.asarray(list(group_quotas.values()), dtype=np.float64)
    else:
        values = np.asarray(group_quotas, dtype=np.float64)
    if values.size == 0:
        return 0.0
    ideal = 1.0 / values.size
    return float(np.sqrt(np.mean((values - ideal) ** 2)) / ideal)


def group_count_divergence(
    g_real: Union[ArrayLike, np.ndarray], g_ideal: Union[ArrayLike, np.ndarray]
) -> Dict[str, float]:
    """Quantify how far the real group count strays from the ideal one.

    Returns the mean and maximum absolute divergence plus the fraction of
    creation steps where the two differ — the quantities discussed when the
    paper explains the premature/late creation of groups (section 4.2.1).
    """
    real = np.asarray(g_real, dtype=np.float64)
    ideal = np.asarray(g_ideal, dtype=np.float64)
    if real.shape != ideal.shape:
        raise ValueError("g_real and g_ideal must have the same shape")
    if real.size == 0:
        return {"mean_abs": 0.0, "max_abs": 0.0, "fraction_diverging": 0.0}
    diff = np.abs(real - ideal)
    return {
        "mean_abs": float(diff.mean()),
        "max_abs": float(diff.max()),
        "fraction_diverging": float(np.mean(diff > 0)),
    }


__all__ = [
    "ideal_group_count",
    "ideal_group_trace",
    "sigma_qg_from_quotas",
    "group_count_divergence",
]
