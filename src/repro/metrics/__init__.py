"""Balance metrics and aggregation utilities.

Every metric of the paper's evaluation lives here:

* :mod:`repro.metrics.balance` — relative standard deviation of quotas
  (``sigma-bar(Qv)``, ``sigma-bar(Qn)``, sections 2.3/3.5/4.3);
* :mod:`repro.metrics.groups` — group-level metrics (``sigma-bar(Qg)``,
  ``G_ideal`` vs ``G_real``, section 4.2);
* :mod:`repro.metrics.theta` — the θ parameter-selection metric of
  section 4.1.2 (figure 5);
* :mod:`repro.metrics.aggregate` — multi-run averaging and summary
  statistics used by the experiment harness.
"""

from repro.metrics.balance import (
    ItemLoadStats,
    LoadAxisStats,
    item_load_stats,
    load_axis_stats,
    relative_std,
    relative_std_percent,
    sigma_from_counts,
    sigma_from_quotas,
    quota_summary,
)
from repro.metrics.groups import (
    group_count_divergence,
    ideal_group_count,
    ideal_group_trace,
    sigma_qg_from_quotas,
)
from repro.metrics.theta import best_vmin, theta, theta_scores
from repro.metrics.aggregate import RunStatistics, average_curves, summarize_runs

__all__ = [
    "ItemLoadStats",
    "LoadAxisStats",
    "item_load_stats",
    "load_axis_stats",
    "relative_std",
    "relative_std_percent",
    "sigma_from_counts",
    "sigma_from_quotas",
    "quota_summary",
    "ideal_group_count",
    "ideal_group_trace",
    "group_count_divergence",
    "sigma_qg_from_quotas",
    "theta",
    "theta_scores",
    "best_vmin",
    "RunStatistics",
    "average_curves",
    "summarize_runs",
]
